package rt

import (
	"math"
	"sync"
	"testing"

	"mana/internal/ckpt"
	"mana/internal/netmodel"
)

// contentionPlan builds the per-job checkpoint plan the contention tests
// share: periodic async incremental captures staged on the burst tier with
// the lifecycle policies (GC + compaction) active, all draining through one
// shared scheduler.
func contentionPlan(ms *ckpt.ModelStore, sched *netmodel.DrainScheduler, job int) *CkptPlan {
	return &CkptPlan{
		AtStep: 2, Every: 1e-6, Mode: ckpt.ContinueAfterCapture,
		Store: ms, Async: true, Incremental: true,
		KeepEpochs: 4, CompactEvery: 3,
		Tier:       netmodel.TierBurstBuffer,
		DrainSched: sched, JobID: job, DrainPriority: job % 2,
		FallbackWaitVT: math.MaxFloat64,
	}
}

// TestContentionRaceAccounting runs several goroutine-concurrent jobs that
// share one DrainScheduler, each with GC and compaction retiring epochs
// behind the captures, and asserts the per-job byte accounting partitions
// exactly: every job's scheduler meter equals its own store's cumulative
// drain meter (no cross-job bleed), and the per-job meters sum to the
// scheduler totals. This extends the per-epoch abort isolation of the
// concurrent-capture fix to cross-job isolation, and is the designated
// -race workout for the scheduler's locking.
func TestContentionRaceAccounting(t *testing.T) {
	const (
		jobs       = 4
		ranks      = 8
		frostIters = 24
	)
	golden, err := Run(testConfig(ranks, AlgoCC), func(rank int) App { return newFrostApp(rank, frostIters) })
	if err != nil {
		t.Fatal(err)
	}

	// Solo probe: one job through a private scheduler pins the accounting
	// equality without contention and sizes the shared capacity below.
	probeCfg := testConfig(ranks, AlgoCC)
	probeModel := netmodel.New(probeCfg.Params, probeCfg.PPN)
	probeSched := netmodel.NewDrainScheduler(probeModel, netmodel.DrainFIFO)
	probeStore := ckpt.NewModelStore(ckpt.NewMemStore(), probeModel, 2)
	probeCfg.Checkpoint = contentionPlan(probeStore, probeSched, 0)
	probeRep, err := Run(probeCfg, func(rank int) App { return newFrostApp(rank, frostIters) })
	if err != nil {
		t.Fatal(err)
	}
	if probeRep.StateDigest != golden.StateDigest {
		t.Fatal("solo scheduled job diverged from golden digest")
	}
	probe := probeSched.Stats()
	if probe.Requests == 0 || probe.Bytes <= 0 {
		t.Fatalf("probe job staged nothing: %+v", probe)
	}
	if got := probeStore.TotalDrainBytes(); got != probe.Bytes {
		t.Fatalf("probe store metered %d drain bytes, scheduler %d", got, probe.Bytes)
	}
	if got := probeStore.TotalDrains(); got != probe.Requests {
		t.Fatalf("probe store recorded %d drains, scheduler %d", got, probe.Requests)
	}

	// Shared run: capacity bounded at one job's lifetime volume so the
	// 4-job backlog can exercise AdmitDelay/Backlog (queue charges and
	// fallbacks are allowed but not required — the assertions below hold
	// either way).
	m := netmodel.New(netmodel.PerlmutterLike(), 4)
	sched := netmodel.NewDrainScheduler(m, netmodel.DrainFairShare)
	sched.SetCapacity(probe.Bytes)

	var (
		wg     sync.WaitGroup
		stores [jobs]*ckpt.ModelStore
		reps   [jobs]*Report
		errs   [jobs]error
	)
	for j := 0; j < jobs; j++ {
		cfg := testConfig(ranks, AlgoCC)
		stores[j] = ckpt.NewModelStore(ckpt.NewMemStore(), netmodel.New(cfg.Params, cfg.PPN), 2)
		cfg.Checkpoint = contentionPlan(stores[j], sched, j)
		wg.Add(1)
		go func(j int, cfg Config) {
			defer wg.Done()
			reps[j], errs[j] = Run(cfg, func(rank int) App { return newFrostApp(rank, frostIters) })
		}(j, cfg)
	}
	wg.Wait()

	var sum netmodel.DrainJobStats
	for j := 0; j < jobs; j++ {
		if errs[j] != nil {
			t.Fatalf("job %d: %v", j, errs[j])
		}
		if !reps[j].Completed {
			t.Fatalf("job %d did not complete", j)
		}
		if reps[j].StateDigest != golden.StateDigest {
			t.Fatalf("job %d diverged under contention", j)
		}
		js := sched.JobStats(j)
		if js.Requests == 0 || js.Bytes <= 0 {
			t.Fatalf("job %d staged nothing: %+v", j, js)
		}
		// The cross-structure equality: the store's write meter and the
		// scheduler's per-job meter were fed independently and must agree
		// to the byte even after GC/compaction retired the epochs.
		if got := stores[j].TotalDrainBytes(); got != js.Bytes {
			t.Fatalf("job %d: store metered %d drain bytes, scheduler %d", j, got, js.Bytes)
		}
		if got := stores[j].TotalDrains(); got != js.Requests {
			t.Fatalf("job %d: store recorded %d drains, scheduler %d", j, got, js.Requests)
		}
		for _, e := range reps[j].CheckpointHistory {
			if e.DrainQueueVT < 0 || math.IsNaN(e.DrainQueueVT) {
				t.Fatalf("job %d epoch %d: bad DrainQueueVT %g", j, e.Epoch, e.DrainQueueVT)
			}
			if e.PFSFallback && e.Tier != netmodel.TierPFS {
				t.Fatalf("job %d epoch %d: fallback epoch not re-tiered to PFS", j, e.Epoch)
			}
		}
		sum.Requests += js.Requests
		sum.Bytes += js.Bytes
		sum.ServiceVT += js.ServiceVT
		sum.QueueVT += js.QueueVT
	}

	tot := sched.Stats()
	if sum.Requests != tot.Requests || sum.Bytes != tot.Bytes {
		t.Fatalf("per-job meters do not partition the totals: sum %+v, total %+v", sum, tot)
	}
	if tot.Requests != sched.Len() {
		t.Fatalf("scheduler served %d requests but logged %d", tot.Requests, sched.Len())
	}
	if math.Abs(sum.ServiceVT-tot.ServiceVT) > 1e-9*math.Max(1, tot.ServiceVT) {
		t.Fatalf("service time does not partition: sum %g, total %g", sum.ServiceVT, tot.ServiceVT)
	}
	if math.Abs(sum.QueueVT-tot.QueueVT) > 1e-9*math.Max(1, math.Abs(tot.QueueVT)) {
		t.Fatalf("queue time does not partition: sum %g, total %g", sum.QueueVT, tot.QueueVT)
	}
	for _, r := range sched.Drain() {
		if r.Job < 0 || r.Job >= jobs {
			t.Fatalf("request %d carries unknown job %d", r.ID, r.Job)
		}
	}
}

// TestContentionAdmissionDefers drives one job against a drain that outlives
// several checkpoint periods, with an admission budget that refuses captures
// while any backlog is outstanding. The runner must keep retrying at
// boundaries, admit the next capture once the drain completes, and attribute
// the refused attempts to that capture's AdmissionDeferred — all without
// perturbing the application state.
func TestContentionAdmissionDefers(t *testing.T) {
	const iters = 40
	_, base := runToCompletion(t, testConfig(8, AlgoCC), iters)

	p := netmodel.PerlmutterLike()
	// Rescale both storage tiers against the (microsecond-scale) app run:
	// captures must be cheap enough that Every sets the cadence, while a
	// PFS drain spans a few checkpoint periods instead of dwarfing the
	// whole run.
	p.StorageLatency = base.RuntimeVT / 3
	p.StorageStagger = 0
	p.BurstLatency = base.RuntimeVT / 1e3
	p.BurstStagger = 0
	cfg := testConfig(8, AlgoCC)
	cfg.Params = p
	m := netmodel.New(p, cfg.PPN)
	sched := netmodel.NewDrainScheduler(m, netmodel.DrainFIFO)
	// Synchronous captures: the epoch is sealed (and its drain enqueued)
	// before the job resumes, so the backlog each later trigger sees is
	// deterministic rather than racing the async commit goroutine.
	cfg.Checkpoint = &CkptPlan{
		AtVT: base.RuntimeVT / 8, Every: base.RuntimeVT / 8, Mode: ckpt.ContinueAfterCapture,
		Incremental: true, Tier: netmodel.TierBurstBuffer,
		DrainSched: sched, JobID: 7,
		FallbackWaitVT:    math.MaxFloat64,
		AdmitBacklogBytes: 1,
	}
	rep, err := Run(cfg, func(rank int) App { return newRingApp(iters) })
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("run did not complete")
	}
	if rep.StateDigest != base.StateDigest {
		t.Fatal("admission control perturbed the application state")
	}
	hist := rep.CheckpointHistory
	if len(hist) < 2 {
		t.Fatalf("expected the job to be re-admitted after the drain, got %d captures", len(hist))
	}
	if hist[0].AdmissionDeferred != 0 {
		t.Fatalf("first capture reports %d deferrals before any backlog existed", hist[0].AdmissionDeferred)
	}
	deferred := 0
	for _, e := range hist {
		deferred += e.AdmissionDeferred
	}
	if deferred == 0 {
		t.Fatal("no capture was ever deferred despite a 1-byte admission budget")
	}
	// With no staging capacity bound the admission budget is the only
	// backpressure: nothing queues and nothing falls back.
	for _, e := range hist {
		if e.DrainQueueVT != 0 || e.PFSFallback {
			t.Fatalf("epoch %d: unexpected backpressure (queue %g, fallback %v)", e.Epoch, e.DrainQueueVT, e.PFSFallback)
		}
	}
	if got, want := sched.Len(), len(hist); got != want {
		t.Fatalf("scheduler logged %d drains for %d burst captures", got, want)
	}
}
