package rt

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"testing"

	"mana/internal/ckpt"
	"mana/internal/mpi"
	"mana/internal/netmodel"
)

// ringApp is a small BSP test program exercising p2p and collectives:
// each iteration (two steps) it (a) sends a value around a ring and
// receives one (with receives that can straddle checkpoints), and (b)
// allreduces an accumulator. A sub-communicator allreduce runs every third
// iteration to exercise multiple groups (and thus multiple ggids).
type ringApp struct {
	Iters int
	Phase int // 0: ring exchange, 1: allreduce, 2: subgroup allreduce
	Iter  int
	Acc   float64
	Ring  []byte // named buffer "ring": received payload
	Sum   []byte // named buffer "sum": allreduce payload
	sub   int    // sub-communicator vid (even/odd split); not serialized
}

func newRingApp(iters int) *ringApp {
	return &ringApp{
		Iters: iters,
		Ring:  make([]byte, 8),
		Sum:   make([]byte, 8),
	}
}

func (a *ringApp) Name() string { return "ring-test" }

func (a *ringApp) Setup(env *Env) error {
	a.sub = env.Split(WorldVID, env.Rank()%2, env.Rank())
	return nil
}

func (a *ringApp) Buffer(id string) []byte {
	switch id {
	case "ring":
		return a.Ring
	case "sum":
		return a.Sum
	}
	return nil
}

func (a *ringApp) Step(env *Env) (bool, error) {
	n := env.Size()
	me := env.Rank()
	// Per the App contract, the phase counter advances BEFORE each blocking
	// batch; results are consumed by the next phase.
	switch a.Phase {
	case 0: // ring exchange
		env.Compute(1e-6)
		left := (me - 1 + n) % n
		right := (me + 1) % n
		env.Irecv(WorldVID, left, 7, "ring", 0, 8)
		env.Send(WorldVID, right, 7, mpi.F64Bytes([]float64{float64(me + a.Iter)}))
		a.Phase = 1
		env.WaitAll()
	case 1: // consume ring result, contribute to allreduce
		recv := mpi.BytesF64(a.Ring)[0]
		a.Acc += recv
		copy(a.Sum, mpi.F64Bytes([]float64{a.Acc}))
		a.Phase = 2
		env.Allreduce(WorldVID, mpi.OpSum, "sum")
	case 2: // consume allreduce result
		a.Acc = mpi.BytesF64(a.Sum)[0] / float64(n) // keep values bounded
		if a.Iter%3 == 2 {
			copy(a.Sum, mpi.F64Bytes([]float64{a.Acc + 1}))
			a.Phase = 3
			env.Allreduce(a.sub, mpi.OpMax, "sum")
		} else {
			a.Phase = 0
			a.Iter++
		}
	case 3: // consume subgroup allreduce result
		a.Acc = mpi.BytesF64(a.Sum)[0]
		a.Phase = 0
		a.Iter++
	}
	return a.Iter < a.Iters, nil
}

func (a *ringApp) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(struct {
		Iters, Phase, Iter int
		Acc                float64
		Ring, Sum          []byte
	}{a.Iters, a.Phase, a.Iter, a.Acc, a.Ring, a.Sum})
	return buf.Bytes(), err
}

func (a *ringApp) Restore(data []byte) error {
	var st struct {
		Iters, Phase, Iter int
		Acc                float64
		Ring, Sum          []byte
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	a.Iters, a.Phase, a.Iter, a.Acc = st.Iters, st.Phase, st.Iter, st.Acc
	copy(a.Ring, st.Ring)
	copy(a.Sum, st.Sum)
	return nil
}

func testConfig(ranks int, algo string) Config {
	return Config{Ranks: ranks, PPN: 4, Params: netmodel.PerlmutterLike(), Algorithm: algo}
}

// finalAccs runs the app to completion and returns rank 0's accumulator.
func runToCompletion(t *testing.T, cfg Config, iters int) (float64, *Report) {
	t.Helper()
	// factory is called from rank goroutines concurrently; preallocate.
	apps := make([]*ringApp, cfg.Ranks)
	rep, err := Run(cfg, func(rank int) App {
		a := newRingApp(iters)
		apps[rank] = a
		return a
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !rep.Completed {
		t.Fatal("run did not complete")
	}
	return apps[0].Acc, rep
}

func TestNativeRunCompletes(t *testing.T) {
	acc, rep := runToCompletion(t, testConfig(8, AlgoNative), 9)
	if math.IsNaN(acc) {
		t.Fatal("accumulator is NaN")
	}
	if rep.RuntimeVT <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if rep.Counters.CollBlocking == 0 || rep.Counters.P2PSends == 0 {
		t.Fatalf("counters empty: %+v", rep.Counters)
	}
}

func TestAlgorithmsAgreeOnResults(t *testing.T) {
	// The checkpointing algorithm must not change application results.
	accN, repN := runToCompletion(t, testConfig(8, AlgoNative), 9)
	accC, repC := runToCompletion(t, testConfig(8, AlgoCC), 9)
	accP, repP := runToCompletion(t, testConfig(8, Algo2PC), 9)
	if accN != accC || accN != accP {
		t.Fatalf("results differ: native %v, cc %v, 2pc %v", accN, accC, accP)
	}
	// CC adds only wrapper costs; 2PC inserts barriers: native <= cc <= 2pc.
	if repC.RuntimeVT < repN.RuntimeVT {
		t.Fatalf("cc (%g) ran faster than native (%g)", repC.RuntimeVT, repN.RuntimeVT)
	}
	if repP.RuntimeVT < repC.RuntimeVT {
		t.Fatalf("2pc (%g) ran faster than cc (%g)", repP.RuntimeVT, repC.RuntimeVT)
	}
	if repP.Counters.Barriers2PC == 0 {
		t.Fatal("2pc inserted no barriers")
	}
	if repC.Counters.Barriers2PC != 0 {
		t.Fatal("cc inserted barriers")
	}
}

func TestUnknownAlgorithmRejected(t *testing.T) {
	cfg := testConfig(2, "bogus")
	if _, err := Run(cfg, func(int) App { return newRingApp(1) }); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
}

func TestNativeCannotCheckpoint(t *testing.T) {
	cfg := testConfig(2, AlgoNative)
	cfg.Checkpoint = &CkptPlan{AtVT: 0}
	if _, err := Run(cfg, func(int) App { return newRingApp(1) }); err == nil {
		t.Fatal("native checkpoint accepted")
	}
}

func checkpointRun(t *testing.T, algo string, mode ckpt.Mode, iters int, atVT float64) (*Report, []*ringApp) {
	t.Helper()
	cfg := testConfig(8, algo)
	cfg.Checkpoint = &CkptPlan{AtVT: atVT, Mode: mode}
	apps := make([]*ringApp, cfg.Ranks)
	rep, err := Run(cfg, func(rank int) App {
		a := newRingApp(iters)
		apps[rank] = a
		return a
	})
	if err != nil {
		t.Fatalf("checkpoint run (%s): %v", algo, err)
	}
	return rep, apps
}

func TestCCCheckpointContinue(t *testing.T) {
	// Checkpoint mid-run in continue mode: the job must finish with the same
	// result as an uninterrupted run, and the checkpoint must be recorded.
	want, _ := runToCompletion(t, testConfig(8, AlgoCC), 30)
	rep, apps := checkpointRun(t, AlgoCC, ckpt.ContinueAfterCapture, 30, 1e-4)
	if !rep.Completed {
		t.Fatal("continue-mode run did not complete")
	}
	if rep.Checkpoint == nil || rep.Image == nil {
		t.Fatal("no checkpoint captured")
	}
	if apps[0].Acc != want {
		t.Fatalf("result changed by checkpoint: %v vs %v", apps[0].Acc, want)
	}
	if rep.Checkpoint.ImageBytes <= 0 {
		t.Fatal("empty checkpoint image")
	}
	if rep.Checkpoint.CaptureVT < rep.Checkpoint.RequestVT {
		t.Fatal("capture before request")
	}
	if rep.Checkpoint.WriteVT <= 0 {
		t.Fatal("no storage time modeled")
	}
	// The job was charged the storage write time.
	if rep.RuntimeVT < rep.Checkpoint.CaptureVT+rep.Checkpoint.WriteVT {
		t.Fatalf("checkpoint I/O not charged: runtime %g < %g",
			rep.RuntimeVT, rep.Checkpoint.CaptureVT+rep.Checkpoint.WriteVT)
	}
}

func Test2PCCheckpointContinue(t *testing.T) {
	want, _ := runToCompletion(t, testConfig(8, Algo2PC), 30)
	rep, apps := checkpointRun(t, Algo2PC, ckpt.ContinueAfterCapture, 30, 1e-4)
	if !rep.Completed || rep.Checkpoint == nil {
		t.Fatal("2pc continue checkpoint failed")
	}
	if apps[0].Acc != want {
		t.Fatalf("result changed by checkpoint: %v vs %v", apps[0].Acc, want)
	}
}

func restartAndFinish(t *testing.T, algo string, iters int, img *ckpt.JobImage) []*ringApp {
	t.Helper()
	cfg := testConfig(8, algo)
	cfg.Checkpoint = &CkptPlan{AtVT: math.Inf(1), Mode: ckpt.ExitAfterCapture}
	apps := make([]*ringApp, cfg.Ranks)
	rep, err := Restart(cfg, img, func(rank int) App {
		a := newRingApp(iters)
		apps[rank] = a
		return a
	})
	if err != nil {
		t.Fatalf("restart (%s): %v", algo, err)
	}
	if !rep.Completed {
		t.Fatal("restarted job did not complete")
	}
	return apps
}

func TestCCCheckpointExitAndRestart(t *testing.T) {
	// The paper's end-to-end workflow: run, checkpoint, exit, restart from
	// images in a fresh lower half, finish — with results identical to an
	// uninterrupted run.
	const iters = 30
	want, _ := runToCompletion(t, testConfig(8, AlgoCC), iters)

	rep, _ := checkpointRun(t, AlgoCC, ckpt.ExitAfterCapture, iters, 1e-4)
	if rep.Completed {
		t.Fatal("exit-mode run should have terminated at the checkpoint")
	}
	if rep.Image == nil {
		t.Fatal("no image captured")
	}

	// Round-trip the image through serialization, as a real restart would.
	blob, err := rep.Image.Encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	img, err := ckpt.DecodeJobImage(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}

	apps := restartAndFinish(t, AlgoCC, iters, img)
	if apps[0].Acc != want {
		t.Fatalf("restart diverged: %v vs %v", apps[0].Acc, want)
	}
	for r, a := range apps {
		if a.Iter != iters {
			t.Fatalf("rank %d stopped at iteration %d", r, a.Iter)
		}
	}
}

func Test2PCCheckpointExitAndRestart(t *testing.T) {
	const iters = 30
	want, _ := runToCompletion(t, testConfig(8, Algo2PC), iters)
	rep, _ := checkpointRun(t, Algo2PC, ckpt.ExitAfterCapture, iters, 1e-4)
	if rep.Image == nil {
		t.Fatal("no image captured")
	}
	apps := restartAndFinish(t, Algo2PC, iters, rep.Image)
	if apps[0].Acc != want {
		t.Fatalf("restart diverged: %v vs %v", apps[0].Acc, want)
	}
}

func TestCheckpointChaining(t *testing.T) {
	// Run -> ckpt exit -> restart -> ckpt exit -> restart -> finish, the
	// paper's resource-allocation chaining scenario.
	const iters = 40
	want, _ := runToCompletion(t, testConfig(8, AlgoCC), iters)

	rep, _ := checkpointRun(t, AlgoCC, ckpt.ExitAfterCapture, iters, 5e-5)
	if rep.Image == nil {
		t.Fatal("first checkpoint missing")
	}

	cfg := testConfig(8, AlgoCC)
	cfg.Checkpoint = &CkptPlan{AtVT: rep.Image.CaptureVT + 5e-5, Mode: ckpt.ExitAfterCapture}
	apps := make([]*ringApp, cfg.Ranks)
	rep2, err := Restart(cfg, rep.Image, func(rank int) App {
		a := newRingApp(iters)
		apps[rank] = a
		return a
	})
	if err != nil {
		t.Fatalf("second leg: %v", err)
	}
	if rep2.Image == nil {
		t.Fatal("second checkpoint missing")
	}
	if rep2.Completed {
		t.Fatal("second leg should have exited at its checkpoint")
	}

	apps = restartAndFinish(t, AlgoCC, iters, rep2.Image)
	if apps[0].Acc != want {
		t.Fatalf("chained restart diverged: %v vs %v", apps[0].Acc, want)
	}
}

func TestRestartRejectsMismatchedConfig(t *testing.T) {
	rep, _ := checkpointRun(t, AlgoCC, ckpt.ExitAfterCapture, 20, 1e-4)
	cfg := testConfig(16, AlgoCC) // wrong rank count
	if _, err := Restart(cfg, rep.Image, func(int) App { return newRingApp(20) }); err == nil {
		t.Fatal("mismatched rank count accepted")
	}
	cfg = testConfig(8, Algo2PC) // wrong algorithm
	if _, err := Restart(cfg, rep.Image, func(int) App { return newRingApp(20) }); err == nil {
		t.Fatal("mismatched algorithm accepted")
	}
}

func TestSafeStateInvariantsAtCapture(t *testing.T) {
	// Capture must record per-rank park kinds and the CC drain must leave
	// all sequence numbers at targets (checked internally by
	// VerifySafeState; an error would fail the run).
	rep, _ := checkpointRun(t, AlgoCC, ckpt.ExitAfterCapture, 30, 1e-4)
	for _, ri := range rep.Image.Images {
		switch ri.Desc.Kind {
		case ckpt.ParkPreCollective, ckpt.ParkInBarrier, ckpt.ParkInWait,
			ckpt.ParkBoundary, ckpt.ParkDone:
		default:
			t.Fatalf("rank %d has invalid park kind %v", ri.Rank, ri.Desc.Kind)
		}
		if ri.Desc.Kind == ckpt.ParkPreCollective && ri.Desc.Coll == nil {
			t.Fatalf("rank %d parked pre-collective without descriptor", ri.Rank)
		}
	}
}

// nbApp exercises non-blocking collectives under CC, including the §4.3.2
// drain: initiations and waits are in different steps, so a checkpoint can
// land between them.
type nbApp struct {
	Iters int
	Phase int
	Iter  int
	Acc   float64
	In    []byte
	Out   []byte
}

func newNBApp(iters int) *nbApp {
	return &nbApp{Iters: iters, In: make([]byte, 8), Out: make([]byte, 8)}
}

func (a *nbApp) Name() string         { return "nb-test" }
func (a *nbApp) Setup(env *Env) error { return nil }
func (a *nbApp) Buffer(id string) []byte {
	switch id {
	case "in":
		return a.In
	case "out":
		return a.Out
	}
	return nil
}

func (a *nbApp) Step(env *Env) (bool, error) {
	switch a.Phase {
	case 0: // initiate (non-blocking: no park possible inside this step)
		copy(a.In, mpi.F64Bytes([]float64{a.Acc + 1}))
		env.Iallreduce(WorldVID, mpi.OpSum, "in", "out")
		env.Compute(2e-6) // overlap window
		a.Phase = 1
	case 1: // complete
		a.Phase = 2
		env.WaitAll()
	case 2: // consume
		a.Acc = mpi.BytesF64(a.Out)[0] / float64(env.Size())
		a.Phase = 0
		a.Iter++
	}
	return a.Iter < a.Iters, nil
}

func (a *nbApp) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(struct {
		Iters, Phase, Iter int
		Acc                float64
		In, Out            []byte
	}{a.Iters, a.Phase, a.Iter, a.Acc, a.In, a.Out})
	return buf.Bytes(), err
}

func (a *nbApp) Restore(data []byte) error {
	var st struct {
		Iters, Phase, Iter int
		Acc                float64
		In, Out            []byte
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	a.Iters, a.Phase, a.Iter, a.Acc = st.Iters, st.Phase, st.Iter, st.Acc
	copy(a.In, st.In)
	copy(a.Out, st.Out)
	return nil
}

func TestNonblockingUnderCC(t *testing.T) {
	cfg := testConfig(8, AlgoCC)
	apps := make([]*nbApp, cfg.Ranks)
	rep, err := Run(cfg, func(rank int) App {
		a := newNBApp(10)
		apps[rank] = a
		return a
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters.CollNonblocking == 0 {
		t.Fatal("no non-blocking collectives recorded")
	}
	want := apps[0].Acc

	// With a checkpoint in the middle (exit + restart).
	cfg.Checkpoint = &CkptPlan{AtVT: 2e-5, Mode: ckpt.ExitAfterCapture}
	rep2, err := Run(cfg, func(rank int) App { return newNBApp(10) })
	if err != nil {
		t.Fatalf("nb checkpoint: %v", err)
	}
	if rep2.Image == nil {
		t.Fatal("no image")
	}
	cfg2 := testConfig(8, AlgoCC)
	apps2 := make([]*nbApp, cfg2.Ranks)
	if _, err := Restart(cfg2, rep2.Image, func(rank int) App {
		a := newNBApp(10)
		apps2[rank] = a
		return a
	}); err != nil {
		t.Fatalf("nb restart: %v", err)
	}
	if apps2[0].Acc != want {
		t.Fatalf("nb restart diverged: %v vs %v", apps2[0].Acc, want)
	}
}

func TestNonblockingRejectedUnder2PC(t *testing.T) {
	cfg := testConfig(4, Algo2PC)
	if _, err := Run(cfg, func(rank int) App { return newNBApp(2) }); err == nil {
		t.Fatal("2pc accepted a non-blocking collective")
	}
}

// contractApp violates the one-blocking-batch-per-step contract.
type contractApp struct{ ringApp }

func (a *contractApp) Step(env *Env) (bool, error) {
	env.Barrier(WorldVID)
	env.Barrier(WorldVID) // second blocking batch: contract violation
	return false, nil
}

func TestContractEnforcedWhenCheckpointing(t *testing.T) {
	cfg := testConfig(4, AlgoCC)
	cfg.Checkpoint = &CkptPlan{AtVT: math.Inf(1), Mode: ckpt.ContinueAfterCapture}
	_, err := Run(cfg, func(rank int) App {
		c := &contractApp{}
		c.ringApp = *newRingApp(1)
		return c
	})
	if err == nil {
		t.Fatal("contract violation not detected")
	}
}

func TestDeterministicRuntimes(t *testing.T) {
	_, rep1 := runToCompletion(t, testConfig(8, AlgoCC), 12)
	_, rep2 := runToCompletion(t, testConfig(8, AlgoCC), 12)
	if rep1.RuntimeVT != rep2.RuntimeVT {
		t.Fatalf("runtime not deterministic: %g vs %g", rep1.RuntimeVT, rep2.RuntimeVT)
	}
}

func TestReportRates(t *testing.T) {
	_, rep := runToCompletion(t, testConfig(8, AlgoCC), 12)
	if rep.Rates.CollPerSec <= 0 || rep.Rates.P2PPerSec <= 0 {
		t.Fatalf("rates not computed: %+v", rep.Rates)
	}
}

func TestSplitOutsideSetupPanics(t *testing.T) {
	if _, err := Run(testConfig(2, AlgoNative), func(int) App { return &splitLateApp{} }); err == nil {
		t.Fatal("late Split accepted")
	}
}

type splitLateApp struct{ ringApp }

func (a *splitLateApp) Setup(env *Env) error { return nil }
func (a *splitLateApp) Step(env *Env) (bool, error) {
	env.Split(WorldVID, 0, 0)
	return false, nil
}

func (a *splitLateApp) Buffer(string) []byte { return nil }

var _ = fmt.Sprintf // keep fmt imported if unused in some builds
