// Package rt is the rank runtime: it hosts applications on top of the MPI
// simulator and the checkpointing protocols, playing the role of MANA's
// upper half. Applications are step-structured state machines; the runtime
// drives their steps, routes every MPI call through the active protocol's
// wrappers, parks ranks at capturable points, and performs restart.
package rt

import "io"

// App is a checkpointable MPI application.
//
// Transparent checkpointing of raw Go stacks is impossible (the Go runtime's
// threads cannot be serialized), so the runtime substitutes DMTCP's
// memory-blob capture with an explicit contract — the checkpointing
// *algorithms* (CC, 2PC) are unaffected; only the capture mechanism differs:
//
//   - Setup must be deterministic: given the same rank and configuration it
//     creates the same communicators (in the same order) and allocates the
//     same named buffers. Restart replays Setup to rebuild the lower half,
//     then Restore overwrites the state.
//   - All mutable state lives in the App value and is captured by Snapshot.
//   - Each Step performs at most one *blocking* MPI batch (one blocking
//     collective, or one WaitAll), as its final action, and the state
//     machine's program counter must be advanced *before* issuing it;
//     post-processing of the results belongs to the following Step.
//     Non-blocking initiations and eager sends are unrestricted. This makes
//     every park point resumable: a pending collective is re-issued from
//     its descriptor (results land in the named buffers), pending receives
//     are re-posted, and execution continues with the next Step — which,
//     thanks to the pre-advanced counter, is the step after the blocking
//     batch, never a re-execution of work that already happened.
//
// Ranks park (become capturable) only at collective wrapper entries, inside
// waits where they were natively blocked, and at program end — never at
// mid-run step boundaries, where a parked rank's unsent point-to-point
// messages could deadlock lagging peers (see docs/ALGORITHM.md).
//   - Communication buffers that receive data are *named*: Buffer(id)
//     resolves them so pending receives can be re-posted into restored
//     state after restart.
type App interface {
	// Name identifies the application (used in reports).
	Name() string
	// Setup creates communicators and buffers. It runs both on fresh starts
	// and on restarts (before Restore).
	Setup(env *Env) error
	// Step advances the application by one unit of work, returning false
	// when the program is complete.
	Step(env *Env) (more bool, err error)
	// Snapshot serializes all mutable state (the upper-half image).
	Snapshot() ([]byte, error)
	// Restore rebuilds state from a Snapshot.
	Restore(data []byte) error
	// Buffer resolves a named communication buffer.
	Buffer(id string) []byte
}

// StreamSnapshotter is an optional App extension: an app that can serialize
// its state directly into a writer. When implemented, the runtime's capture
// path prefers it over Snapshot — the image buffer is filled in one pass
// instead of build-then-copy. SnapshotTo MUST produce exactly the bytes
// Snapshot would return: shard identity (and page-delta diffing against the
// previous epoch) hashes the serialized stream, and the runtime's final
// job digest still uses Snapshot.
type StreamSnapshotter interface {
	SnapshotTo(w io.Writer) error
}
