package rt

// Tests for the CkptPlan retention policy: KeepEpochs/CompactEvery run GC
// and chain compaction from the coordinator's background commit stage, so
// long periodic runs keep a bounded store and a depth-1 restart read —
// while a GC pass can never delete an epoch a concurrent in-flight commit
// is about to reference (the lifecycle pass runs inside the commit ticket,
// after the seal and before the next commit may start).

import (
	"testing"

	"mana/internal/ckpt"
)

// TestLifecyclePolicyBoundsStore: a long low-churn periodic run with
// KeepEpochs+CompactEvery must (a) complete with the same state as the
// unpoliced run, (b) report compactions and reclaimed bytes in the history,
// (c) leave a store that verifies clean and holds only a bounded number of
// epochs, and (d) restart digest-identical from the latest survivor at a
// depth-1 read.
func TestLifecyclePolicyBoundsStore(t *testing.T) {
	const iters = 24
	golden, err := Run(testConfig(8, AlgoCC), func(rank int) App { return newFrostApp(rank, iters) })
	if err != nil {
		t.Fatal(err)
	}

	store := ckpt.NewMemStore()
	cfg := testConfig(8, AlgoCC)
	cfg.Checkpoint = &CkptPlan{
		AtStep: 4, Every: 1e-6, Mode: ckpt.ContinueAfterCapture,
		Store: store, Async: true, Incremental: true,
		PaddedBytesPerRank: 32 << 20,
		KeepEpochs:         1,
		CompactEvery:       2,
	}
	rep, err := Run(cfg, func(rank int) App { return newFrostApp(rank, iters) })
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("policed run did not complete")
	}
	if rep.StateDigest != golden.StateDigest {
		t.Fatal("retention policy changed the computation")
	}
	if len(rep.CheckpointHistory) < 5 {
		t.Fatalf("only %d chained captures", len(rep.CheckpointHistory))
	}

	var compactions int
	var reclaimed int64
	for i, st := range rep.CheckpointHistory {
		if st.CompactedEpoch >= 0 {
			compactions++
			if st.CompactedEpoch <= st.Epoch {
				t.Fatalf("capture %d compacted into epoch %d, not after its own epoch %d",
					i, st.CompactedEpoch, st.Epoch)
			}
			if st.CompactVT <= 0 {
				t.Fatalf("capture %d's compaction has no modeled cost: %+v", i, st)
			}
		}
		reclaimed += st.GCReclaimedBytes
		if st.GCDeletedEpochs > 0 && st.GCVT <= 0 {
			t.Fatalf("capture %d deleted epochs without a modeled delete cost: %+v", i, st)
		}
	}
	if compactions == 0 {
		t.Fatal("CompactEvery=2 never compacted")
	}
	if reclaimed <= 0 {
		t.Fatal("KeepEpochs=1 never reclaimed a byte")
	}

	// The surviving store: bounded, clean, and restartable at depth 1.
	epochs, err := store.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	// keep=1 of sealed epochs plus whatever they transitively reference;
	// with compaction interleaved the tail stays small, never the whole
	// chain (one epoch per capture plus one per compaction).
	if len(epochs) >= len(rep.CheckpointHistory) {
		t.Fatalf("store holds %d epochs after %d captures — retention never bit", len(epochs), len(rep.CheckpointHistory))
	}
	if faults, err := ckpt.VerifyStore(store); err != nil || len(faults) != 0 {
		t.Fatalf("policed store does not verify: faults=%v err=%v", faults, err)
	}
	latest, err := ckpt.LatestEpoch(store)
	if err != nil {
		t.Fatal(err)
	}
	rrep, err := RestartFromStore(testConfig(8, AlgoCC), store, latest, func(rank int) App { return newFrostApp(rank, iters) })
	if err != nil {
		t.Fatal(err)
	}
	if rrep.StateDigest != golden.StateDigest {
		t.Fatal("restart from the policed store diverged")
	}
}

// TestLifecycleGCNeverStrandsInFlightCommit: with background (async)
// commits, the epoch sealed by commit k is the diff parent of in-flight
// commit k+1. An aggressive keep=1 GC runs after every seal, racing the
// pipeline — every sealed epoch must still resolve its references (GC
// inside the commit ticket always retains the next commit's parent), and
// every restart must reproduce the golden state.
func TestLifecycleGCNeverStrandsInFlightCommit(t *testing.T) {
	const iters = 24
	golden, err := Run(testConfig(8, AlgoCC), func(rank int) App { return newFrostApp(rank, iters) })
	if err != nil {
		t.Fatal(err)
	}
	store := ckpt.NewMemStore()
	cfg := testConfig(8, AlgoCC)
	cfg.Checkpoint = &CkptPlan{
		AtStep: 4, Every: 1e-6, Mode: ckpt.ContinueAfterCapture,
		Store: store, Async: true, Incremental: true,
		KeepEpochs: 1, // no compaction: GC alone races the commit pipeline
	}
	rep, err := Run(cfg, func(rank int) App { return newFrostApp(rank, iters) })
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || len(rep.CheckpointHistory) < 5 {
		t.Fatalf("bad policed run: completed=%v captures=%d", rep.Completed, len(rep.CheckpointHistory))
	}
	if faults, err := ckpt.VerifyStore(store); err != nil || len(faults) != 0 {
		t.Fatalf("gc stranded a commit's parent: faults=%v err=%v", faults, err)
	}
	epochs, err := store.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range epochs {
		rrep, err := RestartFromStore(testConfig(8, AlgoCC), store, e, func(rank int) App { return newFrostApp(rank, iters) })
		if err != nil {
			t.Fatalf("restart from surviving epoch %d: %v", e, err)
		}
		if rrep.StateDigest != golden.StateDigest {
			t.Fatalf("restart from surviving epoch %d diverged", e)
		}
	}
}
