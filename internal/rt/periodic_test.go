package rt

import (
	"testing"

	"mana/internal/ckpt"
)

// TestPeriodicCheckpointing: the production pattern — checkpoint every T
// virtual seconds while the job continues — must capture several times,
// charge the storage cost each time, and leave results untouched.
func TestPeriodicCheckpointing(t *testing.T) {
	const iters = 60
	want, base := runToCompletion(t, testConfig(8, AlgoCC), iters)

	cfg := testConfig(8, AlgoCC)
	// Period chosen to land several checkpoints within the run.
	period := base.RuntimeVT / 4
	cfg.Checkpoint = &CkptPlan{AtVT: period, Every: period, Mode: ckpt.ContinueAfterCapture}
	apps := make([]*ringApp, cfg.Ranks)
	rep, err := Run(cfg, func(rank int) App {
		a := newRingApp(iters)
		apps[rank] = a
		return a
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("periodic run did not complete")
	}
	if len(rep.CheckpointHistory) < 2 {
		t.Fatalf("expected multiple checkpoints, got %d", len(rep.CheckpointHistory))
	}
	if apps[0].Acc != want {
		t.Fatalf("periodic checkpointing changed the result: %v vs %v", apps[0].Acc, want)
	}
	// Each capture must be later than the previous and charge write time.
	var prev float64
	for i, st := range rep.CheckpointHistory {
		if st.CaptureVT <= prev {
			t.Fatalf("checkpoint %d at %g not after previous (%g)", i, st.CaptureVT, prev)
		}
		if st.WriteVT <= 0 || st.ImageBytes <= 0 {
			t.Fatalf("checkpoint %d missing I/O accounting: %+v", i, st)
		}
		prev = st.CaptureVT
	}
	// The job paid for every checkpoint: runtime exceeds the uninterrupted
	// runtime by at least the sum of write times.
	var writes float64
	for _, st := range rep.CheckpointHistory {
		writes += st.WriteVT
	}
	if rep.RuntimeVT < base.RuntimeVT+writes*0.9 {
		t.Fatalf("checkpoint I/O not charged: %g < %g + %g", rep.RuntimeVT, base.RuntimeVT, writes)
	}
}

// TestPeriodicCheckpointUnderLoad exercises repeated drain cycles on the
// skewed chain where target updates fire.
func TestPeriodicCheckpointUnderLoad(t *testing.T) {
	const ranks, iters = 6, 200
	cfg := testConfig(ranks, AlgoCC)
	base, err := Run(cfg, func(rank int) App { return newChainApp(iters) })
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*chainApp, ranks)
	if _, err := Run(cfg, func(rank int) App {
		a := newChainApp(iters)
		want[rank] = a
		return a
	}); err != nil {
		t.Fatal(err)
	}

	cfg.Checkpoint = &CkptPlan{
		AtVT:  base.RuntimeVT / 5,
		Every: base.RuntimeVT / 5,
		Mode:  ckpt.ContinueAfterCapture,
	}
	got := make([]*chainApp, ranks)
	rep, err := Run(cfg, func(rank int) App {
		a := newChainApp(iters)
		got[rank] = a
		return a
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CheckpointHistory) < 2 {
		t.Fatalf("expected several checkpoints, got %d", len(rep.CheckpointHistory))
	}
	for r := range want {
		if got[r].Acc != want[r].Acc {
			t.Fatalf("rank %d diverged under periodic checkpointing", r)
		}
	}
}
