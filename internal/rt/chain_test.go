package rt

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"

	"mana/internal/ckpt"
	"mana/internal/mpi"
)

// chainApp reproduces the paper's Figure 3b scenario: overlapping groups
// {0,1}, {1,2}, {2,3} with strongly skewed rank speeds and non-synchronizing
// collectives (Bcast, whose root exits early). When a checkpoint lands, fast
// ranks are several sequence numbers ahead on shared groups; draining a
// middle rank pushes it past a neighbouring group's target, which must be
// raised and fanned out via target-update messages — the cascade where
// "Condition A is applied twice for P2 and once for P4" (paper Figure 2b).
type chainApp struct {
	Iters int
	Iter  int
	Phase int
	Acc   float64
	Buf   []byte // named buffer "b"

	left, right int // pair-comm vids (-1 when absent)
}

func newChainApp(iters int) *chainApp {
	return &chainApp{Iters: iters, Buf: make([]byte, 8), left: -1, right: -1}
}

func (a *chainApp) Name() string { return "chain-test" }

// Setup builds the pair communicators {r, r+1} via two splits: one pairing
// even-odd (0-1, 2-3, ...), one pairing odd-even (1-2, 3-4, ...).
func (a *chainApp) Setup(env *Env) error {
	me := env.Rank()
	n := env.Size()
	// Split A: pairs (0,1), (2,3), ...
	colorA := me / 2
	vidA := env.Split(WorldVID, colorA, me)
	// Split B: pairs (1,2), (3,4), ...; ranks 0 and n-1 sit out.
	colorB := -1
	if me > 0 && me < n || me == 0 {
		colorB = (me + 1) / 2
		if me == 0 || (me == n-1 && n%2 == 0) {
			colorB = -1
		}
	}
	vidB := env.Split(WorldVID, colorB, me)
	// left = comm with my left neighbour, right = with my right neighbour.
	if me%2 == 0 {
		a.right = vidA
		a.left = vidB
	} else {
		a.left = vidA
		a.right = vidB
	}
	return nil
}

func (a *chainApp) Buffer(id string) []byte {
	if id == "b" {
		return a.Buf
	}
	return nil
}

func (a *chainApp) Step(env *Env) (bool, error) {
	// Strong skew: rank r is (r+1)x slower, so at any instant the chain is
	// spread across several iterations.
	env.Compute(float64(env.Rank()+1) * 2e-6)
	switch a.Phase {
	case 0: // bcast on the left-pair comm (I am the non-root for it)
		if a.left < 0 {
			a.Phase = 1
			return true, nil
		}
		copy(a.Buf, mpi.F64Bytes([]float64{float64(a.Iter)}))
		a.Phase = 1
		env.Bcast(a.left, 0, "b") // root = lower rank: exits early
	case 1: // consume, then bcast on the right-pair comm as root
		a.Acc += mpi.BytesF64(a.Buf)[0]
		if a.right < 0 {
			a.Iter++
			a.Phase = 0
			return a.Iter < a.Iters, nil
		}
		copy(a.Buf, mpi.F64Bytes([]float64{float64(a.Iter) + 0.5}))
		a.Phase = 2
		env.Bcast(a.right, 0, "b")
	case 2:
		a.Acc += mpi.BytesF64(a.Buf)[0] * 1e-3
		a.Iter++
		a.Phase = 0
	}
	return a.Iter < a.Iters, nil
}

func (a *chainApp) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(struct {
		Iters, Iter, Phase int
		Acc                float64
		Buf                []byte
	}{a.Iters, a.Iter, a.Phase, a.Acc, a.Buf})
	return buf.Bytes(), err
}

func (a *chainApp) Restore(data []byte) error {
	var st struct {
		Iters, Iter, Phase int
		Acc                float64
		Buf                []byte
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	a.Iters, a.Iter, a.Phase, a.Acc = st.Iters, st.Iter, st.Phase, st.Acc
	copy(a.Buf, st.Buf)
	return nil
}

// TestTargetUpdateCascade checkpoints the skewed chain mid-run and verifies
// the drain actually exercised Algorithm 2's SEND/RECEIVE machinery: target
// updates were sent and consumed, the safe state verified, and a restart
// reproduces the uninterrupted result.
func TestTargetUpdateCascade(t *testing.T) {
	const ranks, iters = 6, 60
	cfg := testConfig(ranks, AlgoCC)

	baseline := make([]*chainApp, ranks)
	rep, err := Run(cfg, func(rank int) App {
		a := newChainApp(iters)
		baseline[rank] = a
		return a
	})
	if err != nil {
		t.Fatal(err)
	}

	// Checkpoint mid-run; the skew guarantees ranks are spread out.
	ck := cfg
	ck.Checkpoint = &CkptPlan{AtVT: rep.RuntimeVT / 2, Mode: ckpt.ExitAfterCapture}
	rep2, err := Run(ck, func(rank int) App { return newChainApp(iters) })
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Image == nil {
		t.Fatal("no image")
	}
	if rep2.Counters.TargetUpdatesSent == 0 {
		t.Fatal("the drain sent no target updates; the Figure 3b cascade was not exercised")
	}
	if rep2.Counters.TargetUpdatesSent != rep2.Counters.TargetUpdatesRecv {
		t.Fatalf("updates sent (%d) != consumed (%d)",
			rep2.Counters.TargetUpdatesSent, rep2.Counters.TargetUpdatesRecv)
	}

	restarted := make([]*chainApp, ranks)
	rep3, err := Restart(cfg, rep2.Image, func(rank int) App {
		a := newChainApp(iters)
		restarted[rank] = a
		return a
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep3.Completed {
		t.Fatal("restart did not complete")
	}
	for r := range baseline {
		if math.Abs(restarted[r].Acc-baseline[r].Acc) > 1e-12 {
			t.Fatalf("rank %d diverged after cascade restart: %v vs %v",
				r, restarted[r].Acc, baseline[r].Acc)
		}
		if restarted[r].Iter != iters {
			t.Fatalf("rank %d stopped at %d", r, restarted[r].Iter)
		}
	}
}

// TestDrainStopsAtFrontier checks the paper's §4.2.2 goal conditions on the
// skewed chain. The safe state forms a *staircase* cut: along the chain of
// overlapping pair-groups, adjacent ranks park at iterations differing by at
// most one (each shared group's sequence numbers agree — condition 1), and
// the drain does not run lagging ranks past the frontier established by the
// fastest rank (condition 2).
func TestDrainStopsAtFrontier(t *testing.T) {
	const ranks, iters = 6, 400
	cfg := testConfig(ranks, AlgoCC)
	rep, err := Run(cfg, func(rank int) App { return newChainApp(iters) })
	if err != nil {
		t.Fatal(err)
	}

	ck := cfg
	// Early enough that even the fastest rank is mid-run.
	ck.Checkpoint = &CkptPlan{AtVT: rep.RuntimeVT / 10, Mode: ckpt.ExitAfterCapture}
	rep2, err := Run(ck, func(rank int) App { return newChainApp(iters) })
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Checkpoint == nil || rep2.Image == nil {
		t.Fatal("no checkpoint")
	}
	iterAt := make([]int, ranks)
	for _, ri := range rep2.Image.Images {
		var st struct {
			Iters, Iter, Phase int
			Acc                float64
			Buf                []byte
		}
		if err := gob.NewDecoder(bytes.NewReader(ri.App)).Decode(&st); err != nil {
			t.Fatal(err)
		}
		iterAt[ri.Rank] = st.Iter
	}
	for r := 0; r+1 < ranks; r++ {
		d := iterAt[r] - iterAt[r+1]
		if d < 0 || d > 1 {
			t.Fatalf("staircase broken between ranks %d and %d: %v", r, r+1, iterAt)
		}
	}
	// Condition 2: the drain must not have run the job to completion.
	for r, it := range iterAt {
		if it >= iters {
			t.Fatalf("rank %d drained to completion (%d of %d): %v", r, it, iters, iterAt)
		}
	}
}
