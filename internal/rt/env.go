package rt

import (
	"errors"
	"fmt"
	"sort"

	"mana/internal/ckpt"
	"mana/internal/core"
	"mana/internal/mpi"
	"mana/internal/netmodel"
)

// WorldVID is the virtual id of MPI_COMM_WORLD.
const WorldVID = 0

// errTerminated unwinds a rank goroutine after a checkpoint-and-exit
// capture. It is recovered by the runner; applications never see it.
var errTerminated = errors.New("rt: rank terminated by checkpoint")

// Env is one rank's execution environment: the MPI-facing API applications
// program against. Every call is interposed by the active checkpointing
// protocol, exactly as MANA's wrapper stubs interpose on a real MPI library.
type Env struct {
	p     *mpi.Proc
	proto ckpt.Protocol
	coord *ckpt.Coordinator
	app   App

	comms   []*ckpt.CommInfo
	reqs    map[int]*reqEntry
	reqOrd  []int // ids in issue order (deterministic iteration)
	nextReq int

	inSetup         bool
	enforceContract bool
	blockingInStep  int
}

// reqEntry tracks one outstanding request.
type reqEntry struct {
	id   int
	req  *mpi.Request
	recv *ckpt.RecvDesc // re-post info for p2p receives
	// doneBoundaries counts step boundaries this entry has crossed while
	// complete and unwaited; stepBoundary collects it on the second one.
	doneBoundaries int
}

func newEnv(p *mpi.Proc, proto ckpt.Protocol, coord *ckpt.Coordinator, app App, enforce bool) *Env {
	e := &Env{
		p: p, proto: proto, coord: coord, app: app,
		reqs:            make(map[int]*reqEntry),
		enforceContract: enforce,
	}
	world := p.World().WorldComm(p.Rank())
	e.comms = append(e.comms, commInfoOf(world, WorldVID))
	proto.RegisterComm(e.comms[0])
	return e
}

func commInfoOf(c *mpi.Comm, vid int) *ckpt.CommInfo {
	members := c.Group().SortedWorldRanks()
	return &ckpt.CommInfo{
		Comm:    c,
		Ggid:    core.GgidOf(members),
		Members: members,
		VID:     vid,
	}
}

// Rank returns the caller's world rank.
func (e *Env) Rank() int { return e.p.Rank() }

// Size returns the world size.
func (e *Env) Size() int { return e.p.World().N }

// Now returns the rank's current virtual time in seconds.
func (e *Env) Now() float64 { return e.p.Clk.Now() }

// Compute models d seconds of application computation.
func (e *Env) Compute(d float64) { e.p.Compute(d) }

// CheckpointPending reports whether a checkpoint request is outstanding
// (the drain protocol is running but this rank has not parked yet). The
// fault-injection conformance probes use it to time a simulated rank death
// against the drain window; applications may use it to schedule
// checkpoint-friendly work.
func (e *Env) CheckpointPending() bool { return e.coord.Pending() }

// BlockUntilAbort simulates a dead rank: the caller blocks, producing no
// further activity, until the world is torn down — by the deadlock watchdog
// or a failed peer — and then unwinds via the usual abort panic (recovered
// by the runner). It never returns normally. Only fault-injection tests
// should call this.
func (e *Env) BlockUntilAbort() {
	e.p.SetWaitSite("fault-injected dead rank")
	e.p.WaitUntil(func() bool { return false })
}

// comm resolves a virtual communicator id.
func (e *Env) comm(vid int) *ckpt.CommInfo {
	if vid < 0 || vid >= len(e.comms) || e.comms[vid] == nil {
		panic(fmt.Sprintf("rt: rank %d: unknown communicator vid %d", e.p.Rank(), vid))
	}
	return e.comms[vid]
}

// CommRank returns the caller's rank within the communicator.
func (e *Env) CommRank(vid int) int { return e.comm(vid).Comm.Rank() }

// CommSize returns the communicator's size.
func (e *Env) CommSize(vid int) int { return e.comm(vid).Comm.Size() }

// Split creates a sub-communicator (MPI_Comm_split) and returns its virtual
// id, or -1 for callers passing a negative color (MPI_UNDEFINED).
// Communicator creation is restricted to Setup so that restart can rebuild
// the same communicators by replaying Setup.
func (e *Env) Split(vid, color, key int) int {
	if !e.inSetup {
		panic(fmt.Sprintf("rt: rank %d: Split outside Setup (communicators must be created during Setup)", e.p.Rank()))
	}
	sub := e.comm(vid).Comm.Split(color, key)
	if sub == nil {
		return -1
	}
	nvid := len(e.comms)
	ci := commInfoOf(sub, nvid)
	e.comms = append(e.comms, ci)
	e.proto.RegisterComm(ci)
	return nvid
}

// buf resolves a named buffer region; ln <= 0 means "to the end".
func (e *Env) buf(id string, off, ln int) []byte {
	b := e.app.Buffer(id)
	if b == nil {
		panic(fmt.Sprintf("rt: rank %d: unknown buffer %q", e.p.Rank(), id))
	}
	if ln <= 0 {
		return b[off:]
	}
	return b[off : off+ln]
}

// chargeP2PWrapper charges the interposition cost of a wrapped
// point-to-point call. MANA wraps every MPI function, not just collectives;
// the native baseline runs unwrapped.
func (e *Env) chargeP2PWrapper() {
	if e.proto.Name() == "native" {
		return
	}
	e.p.Ct.WrapperCalls++
	e.p.Clk.Advance(e.p.World().Model.P.WrapperCost)
}

// Send sends data to comm rank dst with the given tag (eager, never blocks).
func (e *Env) Send(vid, dst, tag int, data []byte) {
	e.chargeP2PWrapper()
	e.comm(vid).Comm.Send(dst, tag, data)
	if e.coord.Pending() {
		// A send may complete a parked peer's pending receive.
		e.coord.Poke()
	}
}

// Irecv posts a receive for (src, tag) into the named buffer region and
// returns a request id. src may be mpi.AnySource, tag may be mpi.AnyTag.
func (e *Env) Irecv(vid, src, tag int, bufID string, off, ln int) int {
	e.chargeP2PWrapper()
	region := e.buf(bufID, off, ln)
	req := e.comm(vid).Comm.Irecv(src, tag, region)
	id := e.addReq(req, &ckpt.RecvDesc{
		CommVID: vid, Src: src, Tag: tag, BufID: bufID, Off: off, Len: len(region),
	})
	return id
}

func (e *Env) addReq(req *mpi.Request, recv *ckpt.RecvDesc) int {
	id := e.nextReq
	e.nextReq++
	e.reqs[id] = &reqEntry{id: id, req: req, recv: recv}
	e.reqOrd = append(e.reqOrd, id)
	return id
}

// WaitAll waits for the given request ids (all outstanding requests if none
// are given). It is a blocking batch: at most one per Step, as the final
// action. While a checkpoint is pending the wait parks through the protocol.
func (e *Env) WaitAll(ids ...int) {
	e.noteBlocking()
	if len(ids) == 0 {
		ids = append([]int(nil), e.reqOrd...)
	}
	e.p.SetWaitSite("waitall")
	defer e.p.SetWaitSite("")
	for _, id := range ids {
		en, ok := e.reqs[id]
		if !ok {
			continue // already completed and collected
		}
		for !en.req.Done() {
			if e.coord.Pending() {
				desc := &ckpt.Descriptor{Kind: ckpt.ParkInWait}
				if out := e.proto.HoldAtWait(desc, en.req.Done); out == ckpt.Terminated {
					panic(errTerminated)
				}
				continue
			}
			// Block until the request completes — or a checkpoint request
			// arrives, in which case the wait must become park-aware (the
			// peer that would complete this request may itself park).
			e.p.WaitUntil(func() bool { return en.req.Done() || e.coord.Pending() })
		}
		en.req.Wait() // completed: synchronize the clock and collect status
		e.dropReq(id)
	}
}

func (e *Env) dropReq(id int) {
	delete(e.reqs, id)
	for i, v := range e.reqOrd {
		if v == id {
			e.reqOrd = append(e.reqOrd[:i], e.reqOrd[i+1:]...)
			break
		}
	}
}

// pendingRecvDescs returns descriptors for incomplete posted receives; the
// coordinator calls it at capture time (the rank is parked).
func (e *Env) pendingRecvDescs() []ckpt.RecvDesc {
	var out []ckpt.RecvDesc
	for _, en := range e.reqs {
		if en.recv != nil && !en.req.Done() {
			out = append(out, *en.recv)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].BufID != out[j].BufID {
			return out[i].BufID < out[j].BufID
		}
		return out[i].Off < out[j].Off
	})
	return out
}

// noteBlocking enforces the one-blocking-batch-per-step contract when
// checkpointing is enabled.
func (e *Env) noteBlocking() {
	if e.inSetup {
		return
	}
	e.blockingInStep++
	if e.enforceContract && e.blockingInStep > 1 {
		panic(fmt.Sprintf("rt: rank %d: multiple blocking MPI batches in one Step "+
			"(checkpointable apps must make the blocking batch the step's final action)", e.p.Rank()))
	}
}

// stepBoundary resets per-step accounting and retires completed receives the
// application abandoned. Without this the request table grows without bound
// in programs that post receives satisfied by matching sends rather than an
// explicit WaitAll. Only p2p receives are pruned, and only after surviving a
// full extra step completed-and-unwaited: a receive posted in one step and
// waited in the next (the widest overlap the one-blocking-batch contract
// leaves room for) still gets its Wait — and with it the clock
// synchronization to the arrival time — while a fire-and-forget receive is
// collected one boundary later. Non-blocking collective initiations are
// never pruned; their deferred WaitAll is the standard overlap pattern.
func (e *Env) stepBoundary() {
	e.blockingInStep = 0
	kept := e.reqOrd[:0]
	for _, id := range e.reqOrd {
		if en := e.reqs[id]; en != nil && en.recv != nil && en.req.Done() {
			if en.doneBoundaries > 0 {
				delete(e.reqs, id)
				continue
			}
			en.doneBoundaries++
		}
		kept = append(kept, id)
	}
	e.reqOrd = kept
}

// runCollective routes one blocking collective through the protocol.
func (e *Env) runCollective(ci *ckpt.CommInfo, desc *ckpt.Descriptor, exec func()) {
	e.noteBlocking()
	if out := e.proto.Collective(ci, desc, exec); out == ckpt.Terminated {
		panic(errTerminated)
	}
}

func collDesc(vid int, kind netmodel.CollKind, op mpi.Op, root int, in, out string) *ckpt.Descriptor {
	return &ckpt.Descriptor{
		Kind: ckpt.ParkPreCollective,
		Coll: &ckpt.CollDesc{
			CommVID: vid, Kind: int(kind), Op: int(op), Root: root,
			InBufID: in, OutBufID: out,
		},
	}
}

// Barrier executes MPI_Barrier on the communicator.
func (e *Env) Barrier(vid int) {
	ci := e.comm(vid)
	e.runCollective(ci, collDesc(vid, netmodel.Barrier, 0, 0, "", ""), func() {
		ci.Comm.Barrier()
	})
}

// Bcast broadcasts the named buffer from root (in place on non-roots).
func (e *Env) Bcast(vid, root int, bufID string) {
	ci := e.comm(vid)
	e.runCollective(ci, collDesc(vid, netmodel.Bcast, 0, root, bufID, bufID), func() {
		ci.Comm.Bcast(root, e.buf(bufID, 0, 0))
	})
}

// Allreduce reduces the named buffer in place across the communicator.
func (e *Env) Allreduce(vid int, op mpi.Op, bufID string) {
	ci := e.comm(vid)
	e.runCollective(ci, collDesc(vid, netmodel.Allreduce, op, 0, bufID, bufID), func() {
		b := e.buf(bufID, 0, 0)
		copy(b, ci.Comm.Allreduce(op, b))
	})
}

// Reduce reduces the named buffer to the root (in place at the root).
func (e *Env) Reduce(vid, root int, op mpi.Op, bufID string) {
	ci := e.comm(vid)
	e.runCollective(ci, collDesc(vid, netmodel.Reduce, op, root, bufID, bufID), func() {
		b := e.buf(bufID, 0, 0)
		if res := ci.Comm.Reduce(root, op, b); res != nil {
			copy(b, res)
		}
	})
}

// Allgather gathers equal contributions from all ranks into the out buffer.
func (e *Env) Allgather(vid int, inBufID, outBufID string) {
	ci := e.comm(vid)
	e.runCollective(ci, collDesc(vid, netmodel.Allgather, 0, 0, inBufID, outBufID), func() {
		copy(e.buf(outBufID, 0, 0), ci.Comm.Allgather(e.buf(inBufID, 0, 0)))
	})
}

// Alltoall exchanges equal blocks of the named buffer (in place).
func (e *Env) Alltoall(vid int, bufID string) {
	ci := e.comm(vid)
	e.runCollective(ci, collDesc(vid, netmodel.Alltoall, 0, 0, bufID, bufID), func() {
		b := e.buf(bufID, 0, 0)
		copy(b, ci.Comm.Alltoall(b))
	})
}

// Gather gathers contributions to the root's out buffer.
func (e *Env) Gather(vid, root int, inBufID, outBufID string) {
	ci := e.comm(vid)
	e.runCollective(ci, collDesc(vid, netmodel.Gather, 0, root, inBufID, outBufID), func() {
		res := ci.Comm.Gather(root, e.buf(inBufID, 0, 0))
		if res != nil {
			copy(e.buf(outBufID, 0, 0), res)
		}
	})
}

// Scatter distributes the root's in buffer in equal blocks to out buffers.
func (e *Env) Scatter(vid, root int, inBufID, outBufID string) {
	ci := e.comm(vid)
	e.runCollective(ci, collDesc(vid, netmodel.Scatter, 0, root, inBufID, outBufID), func() {
		var payload []byte
		if ci.Comm.Rank() == root {
			payload = e.buf(inBufID, 0, 0)
		}
		copy(e.buf(outBufID, 0, 0), ci.Comm.Scatter(root, payload))
	})
}

// Scan computes the inclusive prefix reduction of the named buffer in place
// (MPI_Scan).
func (e *Env) Scan(vid int, op mpi.Op, bufID string) {
	ci := e.comm(vid)
	e.runCollective(ci, collDesc(vid, netmodel.Scan, op, 0, bufID, bufID), func() {
		b := e.buf(bufID, 0, 0)
		copy(b, ci.Comm.Scan(op, b))
	})
}

// ReduceScatter reduces the named buffer across the communicator and
// scatters equal blocks; the caller's block lands at the front of the
// buffer (MPI_Reduce_scatter_block).
func (e *Env) ReduceScatter(vid int, op mpi.Op, bufID string) {
	ci := e.comm(vid)
	e.runCollective(ci, collDesc(vid, netmodel.ReduceScatter, op, 0, bufID, bufID), func() {
		b := e.buf(bufID, 0, 0)
		copy(b, ci.Comm.ReduceScatter(op, b))
	})
}

// initiate routes a non-blocking collective initiation through the protocol.
func (e *Env) initiate(ci *ckpt.CommInfo, exec func() *mpi.Request) int {
	req := e.proto.Initiate(ci, exec)
	return e.addReq(req, nil)
}

// Ibarrier initiates a non-blocking barrier and returns a request id.
func (e *Env) Ibarrier(vid int) int {
	ci := e.comm(vid)
	return e.initiate(ci, func() *mpi.Request { return ci.Comm.Ibarrier() })
}

// Ibcast initiates a non-blocking broadcast of the named buffer.
func (e *Env) Ibcast(vid, root int, bufID string) int {
	ci := e.comm(vid)
	return e.initiate(ci, func() *mpi.Request { return ci.Comm.Ibcast(root, e.buf(bufID, 0, 0)) })
}

// Iallreduce initiates a non-blocking allreduce from in to out buffers.
func (e *Env) Iallreduce(vid int, op mpi.Op, inBufID, outBufID string) int {
	ci := e.comm(vid)
	return e.initiate(ci, func() *mpi.Request {
		return ci.Comm.Iallreduce(op, e.buf(inBufID, 0, 0), e.buf(outBufID, 0, 0))
	})
}

// Iallgather initiates a non-blocking allgather.
func (e *Env) Iallgather(vid int, inBufID, outBufID string) int {
	ci := e.comm(vid)
	return e.initiate(ci, func() *mpi.Request {
		return ci.Comm.Iallgather(e.buf(inBufID, 0, 0), e.buf(outBufID, 0, 0))
	})
}

// Ialltoall initiates a non-blocking all-to-all exchange.
func (e *Env) Ialltoall(vid int, inBufID, outBufID string) int {
	ci := e.comm(vid)
	return e.initiate(ci, func() *mpi.Request {
		return ci.Comm.Ialltoall(e.buf(inBufID, 0, 0), e.buf(outBufID, 0, 0))
	})
}

// BenchCollective executes a size-only blocking collective: it costs
// exactly what a data-carrying collective of the given per-rank payload
// size would, without moving bytes. Micro-benchmarks use it to model large
// messages without allocating them.
func (e *Env) BenchCollective(vid int, kind netmodel.CollKind, root, size int) {
	ci := e.comm(vid)
	desc := &ckpt.Descriptor{
		Kind: ckpt.ParkPreCollective,
		Coll: &ckpt.CollDesc{CommVID: vid, Kind: int(kind), Root: root, VirtSize: size, Bench: true},
	}
	e.runCollective(ci, desc, func() {
		ci.Comm.CollectiveSized(kind, root, size)
	})
}

// IBenchCollective initiates a size-only non-blocking collective.
func (e *Env) IBenchCollective(vid int, kind netmodel.CollKind, root, size int) int {
	ci := e.comm(vid)
	return e.initiate(ci, func() *mpi.Request {
		return ci.Comm.ICollectiveSized(kind, root, size)
	})
}

// execCollDesc re-issues a pending collective from its restart descriptor.
// The VirtSize > 0 fallback recognizes benchmark collectives captured into
// v1 images, which predate the Bench flag (a size-0 bench collective from
// such an image is indistinguishable from a named-buffer one and used to
// panic on the buffer lookup — the flag exists precisely for that case).
func (e *Env) execCollDesc(d *ckpt.CollDesc) {
	if d.Bench || d.VirtSize > 0 {
		e.BenchCollective(d.CommVID, netmodel.CollKind(d.Kind), d.Root, d.VirtSize)
		return
	}
	switch netmodel.CollKind(d.Kind) {
	case netmodel.Barrier:
		e.Barrier(d.CommVID)
	case netmodel.Bcast:
		e.Bcast(d.CommVID, d.Root, d.InBufID)
	case netmodel.Allreduce:
		e.Allreduce(d.CommVID, mpi.Op(d.Op), d.InBufID)
	case netmodel.Reduce:
		e.Reduce(d.CommVID, d.Root, mpi.Op(d.Op), d.InBufID)
	case netmodel.Allgather:
		e.Allgather(d.CommVID, d.InBufID, d.OutBufID)
	case netmodel.Alltoall:
		e.Alltoall(d.CommVID, d.InBufID)
	case netmodel.Gather:
		e.Gather(d.CommVID, d.Root, d.InBufID, d.OutBufID)
	case netmodel.Scatter:
		e.Scatter(d.CommVID, d.Root, d.InBufID, d.OutBufID)
	case netmodel.Scan:
		e.Scan(d.CommVID, mpi.Op(d.Op), d.InBufID)
	case netmodel.ReduceScatter:
		e.ReduceScatter(d.CommVID, mpi.Op(d.Op), d.InBufID)
	default:
		panic(fmt.Sprintf("rt: cannot re-issue collective kind %d", d.Kind))
	}
}

// repostRecvs re-posts pending receives recorded in a restart image.
func (e *Env) repostRecvs(descs []ckpt.RecvDesc) []int {
	ids := make([]int, 0, len(descs))
	for _, d := range descs {
		ids = append(ids, e.Irecv(d.CommVID, d.Src, d.Tag, d.BufID, d.Off, d.Len))
	}
	return ids
}
