package rt

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"testing"

	"mana/internal/ckpt"
	"mana/internal/mpi"
)

// fuzzApp executes a pseudo-random (but seed-deterministic) communication
// program: each step draws from a mix of world collectives, sub-communicator
// collectives, ring point-to-point exchanges, non-blocking collectives, and
// compute, with all state folded into a running checksum. Used to check, on
// hundreds of schedules, that (a) the checkpointing algorithms never change
// results, and (b) a checkpoint-restart at an arbitrary time reproduces the
// uninterrupted run exactly.
type fuzzApp struct {
	Iters int
	Seed  uint64

	Iter   int
	Phase  int
	PendOp int // which op the current iteration drew
	Check  float64
	Buf    []byte // named buffer "buf"
	Ring   []byte // named buffer "ring"
	Out    []byte // named buffer "out"
	sub    int
	useNB  bool
}

func newFuzzApp(iters int, seed uint64, useNB bool) *fuzzApp {
	return &fuzzApp{
		Iters: iters, Seed: seed, useNB: useNB,
		Buf: make([]byte, 16), Ring: make([]byte, 8), Out: make([]byte, 16),
	}
}

func (a *fuzzApp) Name() string { return "fuzz" }

func (a *fuzzApp) Setup(env *Env) error {
	a.sub = env.Split(WorldVID, env.Rank()%2, env.Rank())
	return nil
}

func (a *fuzzApp) Buffer(id string) []byte {
	switch id {
	case "buf":
		return a.Buf
	case "ring":
		return a.Ring
	case "out":
		return a.Out
	}
	return nil
}

// next is a deterministic per-iteration op selector shared by all ranks
// (they must agree on the op sequence: MPI programs are SPMD).
func (a *fuzzApp) next() uint64 {
	x := a.Seed + uint64(a.Iter)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (a *fuzzApp) fold(v float64) {
	a.Check = math.Mod(a.Check*1.000003+v, 1e9)
}

func (a *fuzzApp) Step(env *Env) (bool, error) {
	me := env.Rank()
	n := env.Size()
	switch a.Phase {
	case 0: // choose and launch this iteration's operation
		a.PendOp = int(a.next() % 6)
		if !a.useNB && a.PendOp == 5 {
			a.PendOp = 0
		}
		env.Compute(float64(me%3+1) * 1e-7) // mild skew
		copy(a.Buf, mpi.F64Bytes([]float64{a.Check, float64(me)}))
		switch a.PendOp {
		case 0: // world allreduce
			a.Phase = 1
			env.Allreduce(WorldVID, mpi.OpSum, "buf")
		case 1: // world bcast from a rotating root
			root := a.Iter % n
			a.Phase = 1
			env.Bcast(WorldVID, root, "buf")
		case 2: // subgroup allreduce (max)
			a.Phase = 1
			env.Allreduce(a.sub, mpi.OpMax, "buf")
		case 3: // ring exchange
			left := (me - 1 + n) % n
			right := (me + 1) % n
			env.Irecv(WorldVID, left, 40, "ring", 0, 8)
			env.Send(WorldVID, right, 40, mpi.F64Bytes([]float64{a.Check + float64(me)}))
			a.Phase = 1
			env.WaitAll()
		case 4: // barrier
			a.Phase = 1
			env.Barrier(WorldVID)
		case 5: // non-blocking allreduce, waited next step
			env.Iallreduce(WorldVID, mpi.OpSum, "buf", "out")
			a.Phase = 2
		}
	case 1: // consume blocking result
		switch a.PendOp {
		case 0, 1, 2:
			a.fold(mpi.BytesF64(a.Buf)[0])
		case 3:
			a.fold(mpi.BytesF64(a.Ring)[0])
		case 4:
			a.fold(1)
		}
		a.Iter++
		a.Phase = 0
	case 2: // complete the non-blocking op
		a.Phase = 3
		env.WaitAll()
	case 3:
		a.fold(mpi.BytesF64(a.Out)[0])
		a.Iter++
		a.Phase = 0
	}
	return a.Iter < a.Iters, nil
}

func (a *fuzzApp) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(struct {
		Iters, Iter, Phase, PendOp int
		Seed                       uint64
		Check                      float64
		Buf, Ring, Out             []byte
	}{a.Iters, a.Iter, a.Phase, a.PendOp, a.Seed, a.Check, a.Buf, a.Ring, a.Out})
	return buf.Bytes(), err
}

func (a *fuzzApp) Restore(data []byte) error {
	var st struct {
		Iters, Iter, Phase, PendOp int
		Seed                       uint64
		Check                      float64
		Buf, Ring, Out             []byte
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	a.Iters, a.Iter, a.Phase, a.PendOp = st.Iters, st.Iter, st.Phase, st.PendOp
	a.Seed, a.Check = st.Seed, st.Check
	copy(a.Buf, st.Buf)
	copy(a.Ring, st.Ring)
	copy(a.Out, st.Out)
	return nil
}

// runFuzz executes one schedule and returns the per-rank checksums.
func runFuzz(t *testing.T, cfg Config, iters int, seed uint64, useNB bool,
	img *ckpt.JobImage) ([]float64, *Report) {
	t.Helper()
	apps := make([]*fuzzApp, cfg.Ranks)
	factory := func(rank int) App {
		a := newFuzzApp(iters, seed, useNB)
		apps[rank] = a
		return a
	}
	var rep *Report
	var err error
	if img == nil {
		rep, err = Run(cfg, factory)
	} else {
		rep, err = Restart(cfg, img, factory)
	}
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	sums := make([]float64, cfg.Ranks)
	for r, a := range apps {
		sums[r] = a.Check
	}
	return sums, rep
}

// TestPropertyAlgorithmsPreserveResults: across random schedules, native,
// 2PC, and CC must produce bit-identical application results.
func TestPropertyAlgorithmsPreserveResults(t *testing.T) {
	const ranks, iters = 6, 25
	for seed := uint64(1); seed <= 12; seed++ {
		native, _ := runFuzz(t, testConfig(ranks, AlgoNative), iters, seed, false, nil)
		twoPC, _ := runFuzz(t, testConfig(ranks, Algo2PC), iters, seed, false, nil)
		cc, _ := runFuzz(t, testConfig(ranks, AlgoCC), iters, seed, true, nil)
		ccBlk, _ := runFuzz(t, testConfig(ranks, AlgoCC), iters, seed, false, nil)
		for r := 0; r < ranks; r++ {
			if native[r] != twoPC[r] || native[r] != ccBlk[r] {
				t.Fatalf("seed %d rank %d: results differ: native %v, 2pc %v, cc %v",
					seed, r, native[r], twoPC[r], ccBlk[r])
			}
		}
		_ = cc // non-blocking variant runs a different op mix; checked below
	}
}

// TestPropertyCheckpointRestartTransparent: for random schedules and random
// checkpoint times, exit-and-restart must reproduce the uninterrupted
// checksums exactly — the definition of transparent checkpointing.
func TestPropertyCheckpointRestartTransparent(t *testing.T) {
	const ranks, iters = 6, 30
	for _, algo := range []string{AlgoCC, Algo2PC} {
		useNB := algo == AlgoCC
		for seed := uint64(1); seed <= 10; seed++ {
			want, base := runFuzz(t, testConfig(ranks, algo), iters, seed, useNB, nil)

			// Random-ish checkpoint times derived from the seed.
			frac := 0.15 + 0.7*float64(seed%7)/7.0
			cfg := testConfig(ranks, algo)
			cfg.Checkpoint = &CkptPlan{AtVT: base.RuntimeVT * frac, Mode: ckpt.ExitAfterCapture}
			_, rep := runFuzz(t, cfg, iters, seed, useNB, nil)
			if rep.Image == nil {
				// The job may have finished before the request landed.
				continue
			}
			got, _ := runFuzz(t, testConfig(ranks, algo), iters, seed, useNB, rep.Image)
			for r := 0; r < ranks; r++ {
				if got[r] != want[r] {
					t.Fatalf("%s seed %d frac %.2f rank %d: restart diverged: %v vs %v",
						algo, seed, frac, r, got[r], want[r])
				}
			}
		}
	}
}

// TestPropertyDoubleCheckpointChain: two checkpoint-exit-restart hops across
// random schedules.
func TestPropertyDoubleCheckpointChain(t *testing.T) {
	const ranks, iters = 4, 30
	for seed := uint64(3); seed <= 8; seed++ {
		want, base := runFuzz(t, testConfig(ranks, AlgoCC), iters, seed, true, nil)

		cfg := testConfig(ranks, AlgoCC)
		cfg.Checkpoint = &CkptPlan{AtVT: base.RuntimeVT * 0.3, Mode: ckpt.ExitAfterCapture}
		_, rep1 := runFuzz(t, cfg, iters, seed, true, nil)
		if rep1.Image == nil {
			continue
		}
		cfg2 := testConfig(ranks, AlgoCC)
		cfg2.Checkpoint = &CkptPlan{AtVT: base.RuntimeVT * 0.6, Mode: ckpt.ExitAfterCapture}
		_, rep2 := runFuzz(t, cfg2, iters, seed, true, rep1.Image)
		img := rep2.Image
		if img == nil {
			img = rep1.Image
		}
		got, _ := runFuzz(t, testConfig(ranks, AlgoCC), iters, seed, true, img)
		for r := 0; r < ranks; r++ {
			if got[r] != want[r] {
				t.Fatalf("seed %d rank %d: chained restart diverged: %v vs %v",
					seed, r, got[r], want[r])
			}
		}
	}
}

// TestPropertyVirtualTimeOrdering: for every random schedule, the virtual
// makespan must satisfy native <= CC <= 2PC.
func TestPropertyVirtualTimeOrdering(t *testing.T) {
	const ranks, iters = 6, 25
	for seed := uint64(1); seed <= 8; seed++ {
		_, native := runFuzz(t, testConfig(ranks, AlgoNative), iters, seed, false, nil)
		_, twoPC := runFuzz(t, testConfig(ranks, Algo2PC), iters, seed, false, nil)
		_, cc := runFuzz(t, testConfig(ranks, AlgoCC), iters, seed, false, nil)
		if cc.RuntimeVT < native.RuntimeVT {
			t.Fatalf("seed %d: cc (%g) faster than native (%g)", seed, cc.RuntimeVT, native.RuntimeVT)
		}
		if twoPC.RuntimeVT < cc.RuntimeVT {
			t.Fatalf("seed %d: 2pc (%g) faster than cc (%g)", seed, twoPC.RuntimeVT, cc.RuntimeVT)
		}
	}
}

var _ = fmt.Sprintf

// FuzzCheckpointRestartTransparent is the native-fuzzing form of the
// transparency property: the fuzzer owns the schedule seed, the checkpoint
// fraction, and the algorithm choice, instead of the fixed seed sweep the
// TestProperty* variants walk. As a plain test it replays the seed corpus;
// under `go test -fuzz=FuzzCheckpointRestartTransparent ./internal/rt` it
// explores new schedules (CI runs a short -fuzztime smoke of exactly this).
func FuzzCheckpointRestartTransparent(f *testing.F) {
	f.Add(uint64(1), byte(64), true)
	f.Add(uint64(7), byte(180), false)
	f.Add(uint64(42), byte(32), true)
	f.Fuzz(func(t *testing.T, seed uint64, fracByte byte, useCC bool) {
		const ranks, iters = 4, 20
		algo, useNB := Algo2PC, false
		if useCC {
			algo, useNB = AlgoCC, true
		}
		want, base := runFuzz(t, testConfig(ranks, algo), iters, seed, useNB, nil)

		frac := 0.1 + 0.8*float64(fracByte)/255.0
		cfg := testConfig(ranks, algo)
		cfg.Checkpoint = &CkptPlan{AtVT: base.RuntimeVT * frac, Mode: ckpt.ExitAfterCapture}
		_, rep := runFuzz(t, cfg, iters, seed, useNB, nil)
		if rep.Image == nil {
			t.Skip("job finished before the checkpoint request landed")
		}
		got, _ := runFuzz(t, testConfig(ranks, algo), iters, seed, useNB, rep.Image)
		for r := 0; r < ranks; r++ {
			if got[r] != want[r] {
				t.Fatalf("%s seed %d frac %.2f rank %d: restart diverged: %v vs %v",
					algo, seed, frac, r, got[r], want[r])
			}
		}
	})
}

// TestPropertyPeriodicCheckpointsTransparent: random schedules with
// periodic in-place checkpoints (several drain-capture-release cycles per
// run) must leave results untouched.
func TestPropertyPeriodicCheckpointsTransparent(t *testing.T) {
	const ranks, iters = 6, 30
	for seed := uint64(1); seed <= 8; seed++ {
		want, base := runFuzz(t, testConfig(ranks, AlgoCC), iters, seed, true, nil)
		cfg := testConfig(ranks, AlgoCC)
		period := base.RuntimeVT / 4
		cfg.Checkpoint = &CkptPlan{AtVT: period, Every: period, Mode: ckpt.ContinueAfterCapture}
		got, rep := runFuzz(t, cfg, iters, seed, true, nil)
		if len(rep.CheckpointHistory) == 0 {
			continue
		}
		for r := 0; r < ranks; r++ {
			if got[r] != want[r] {
				t.Fatalf("seed %d rank %d: periodic checkpoints changed results: %v vs %v",
					seed, r, got[r], want[r])
			}
		}
	}
}
