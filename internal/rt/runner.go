package rt

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"mana/internal/ckpt"
	"mana/internal/core"
	"mana/internal/mpi"
	"mana/internal/netmodel"
	"mana/internal/trace"
	"mana/internal/twopc"
)

// Algorithm names accepted by Config.Algorithm.
const (
	AlgoNative = "native"
	Algo2PC    = "2pc"
	AlgoCC     = "cc"
)

// CkptPlan schedules checkpointing during a run.
type CkptPlan struct {
	// AtVT requests the (first) checkpoint when any rank's virtual clock
	// first reaches this time (seconds).
	AtVT float64
	// AtStep, when positive, requests the checkpoint at the boundary where
	// rank 0 has completed exactly AtStep application steps, instead of at a
	// virtual time. Step counts are a deterministic property of the program,
	// so two runs with the same AtStep raise the request at the identical
	// point in rank 0's execution — the trigger the conformance engine
	// sweeps. AtStep takes precedence over AtVT.
	AtStep int
	// Every, when positive, requests further checkpoints at this virtual
	// period after each capture — the production pattern of periodic
	// checkpoints during a long run. Only meaningful with
	// ContinueAfterCapture.
	Every float64
	// Mode selects continue-in-place or exit-for-restart.
	Mode ckpt.Mode
	// PaddedBytesPerRank, when positive, overrides the measured image size
	// in the storage model (to reproduce the paper's image sizes). With
	// periodic checkpointing every capture is padded, so Checkpoint,
	// CheckpointHistory, and the charged write times all agree.
	PaddedBytesPerRank int64
	// CaptureWorkers bounds the coordinator's per-rank snapshot fan-out at
	// capture time. Zero selects GOMAXPROCS; one forces the serial baseline.
	CaptureWorkers int

	// Async enables the staged pipeline's overlapped mode: the job resumes
	// as soon as all ranks are snapshotted, paying only the storage open
	// latency, while shard encode and store commit run behind execution
	// (CheckpointStats.OverlapVT instead of StallVT).
	Async bool
	// Incremental enables shard reuse across the Store's epochs: ranks
	// whose state did not change since the previous committed capture are
	// recorded as references instead of re-written. Requires Store.
	Incremental bool
	// Delta enables sub-rank page deltas on top of Incremental: capture
	// hashing keeps a per-page CRC table, and a rank whose shard changed in
	// only a few 64 KiB pages is stored as a page-delta object holding just
	// the dirty pages (ckpt.RawFormatPageDelta) against the chain's full
	// base shard. Requires Store (defaulted like Incremental).
	Delta bool
	// CDC enables content-defined chunking on top of Incremental: capture
	// hashing splits each rank's stream on Gear rolling-hash boundaries,
	// and a changed rank stores only content-new chunks as a chunk object
	// (ckpt.RawFormatCDC) referencing the chain's existing chunks — reuse
	// survives insertions, deletions, and cross-rank duplication. Requires
	// Store (defaulted like Incremental); mutually exclusive with Delta.
	CDC bool
	// Codec overrides the stored-object codec for every committed shard:
	// "flate" (default) or "none" (identity passthrough, no compression
	// CPU). Empty defers to the storage tier's codec hint.
	Codec string
	// Tier selects the storage tier checkpoint writes are charged against
	// (netmodel.TierPFS by default). TierBurstBuffer stages captures on the
	// fast tier — with Async the job stalls only for the burst open
	// latency — while each sealed epoch accrues a background parallel-FS
	// drain (CheckpointStats.TierDrainVT).
	Tier netmodel.StorageTier
	// Store, when non-nil, receives every capture as a sealed epoch (shards
	// plus manifest) in addition to the in-memory image. Restart can load
	// any sealed epoch back via RestartFromStore.
	Store ckpt.Store
	// StreamBudgetBytes bounds the commit stage's in-flight streaming-
	// encode memory: shards gob+compress+checksum straight into the store's
	// shard streams, and concurrent streams charge a fixed footprint
	// against this budget, so peak encode memory never scales with the
	// image size. Zero selects ckpt.DefaultStreamBudgetBytes. The realized
	// high-water mark is reported per capture as
	// CheckpointStats.PeakEncodeBytes.
	StreamBudgetBytes int64
	// KeepEpochs, when positive, garbage-collects the store after every
	// sealed epoch, retaining the newest KeepEpochs epochs plus everything
	// their manifests transitively reference (ckpt.GCStore). Reclaimed
	// bytes are reported per capture in CheckpointStats. Requires Store.
	KeepEpochs int
	// CompactEvery, when positive, compacts the chain after every
	// CompactEvery-th seal: the newest epoch is rewritten as a fresh
	// self-contained epoch (ckpt.CompactChain), bounding the restart read
	// fan-in (RestartReadVT) no matter how deep the incremental chain
	// grows, and making the old chain reclaimable by KeepEpochs.
	CompactEvery int

	// DrainSched, when non-nil, shares this job's burst→PFS drains with
	// other tenants through one netmodel.DrainScheduler: sealed burst
	// epochs' drains queue against every job using the same scheduler
	// instead of assuming a private PFS, and a bounded scheduler capacity
	// feeds back as backpressure (CheckpointStats.DrainQueueVT), forced
	// direct-to-PFS fallback (CheckpointStats.PFSFallback), and admission
	// deferrals. Store-path only; requires Tier = TierBurstBuffer to have
	// any effect. JobID keys this job in the shared per-job accounting and
	// DrainPriority ranks it under the scheduler's priority policy.
	DrainSched    *netmodel.DrainScheduler
	JobID         int
	DrainPriority int
	// FallbackWaitVT is the longest backpressure wait a sealing epoch
	// tolerates before abandoning the burst tier for a direct PFS commit.
	// Zero tolerates none: any wait for staging room forces the fallback.
	FallbackWaitVT float64
	// AdmitBacklogBytes, when positive, enables admission control: a
	// periodic checkpoint trigger that fires while the shared backlog
	// exceeds this budget is refused and retried at a later boundary
	// (counted in CheckpointStats.AdmissionDeferred).
	AdmitBacklogBytes int64
}

// Config describes one job.
type Config struct {
	Ranks      int
	PPN        int // ranks per node
	Params     netmodel.Params
	Algorithm  string // AlgoNative, Algo2PC, or AlgoCC
	Checkpoint *CkptPlan

	// StallTimeout configures the deadlock watchdog: if no simulator
	// progress happens for this long the run is aborted with a per-rank
	// wait-site diagnostic instead of hanging. Zero selects
	// mpi.DefaultStallTimeout; a negative value disables the watchdog.
	StallTimeout time.Duration
}

// Report summarizes one run.
type Report struct {
	App       string
	Algorithm string
	Ranks     int
	PPN       int

	// RuntimeVT is the job's virtual makespan (max rank clock at exit).
	RuntimeVT float64
	Counters  trace.Counters
	Rates     trace.Rates

	// Checkpoint results (nil if no checkpoint was captured). With periodic
	// checkpointing, Checkpoint/Image describe the most recent capture and
	// CheckpointHistory lists them all.
	Checkpoint        *ckpt.CheckpointStats
	Image             *ckpt.JobImage
	CheckpointHistory []ckpt.CheckpointStats

	// Completed is false when the job exited at a checkpoint (ExitAfterCapture).
	Completed bool

	// RestartReadVT is the modeled storage read time of the restart this run
	// began from (zero for runs started fresh): the fixed lower-half
	// relaunch plus the read fan-in over the image's resolved shard set —
	// a restart from a store epoch charges every referenced older epoch an
	// extra open and per-shard seeks on the tier the chain was committed to
	// (netmodel.RestartReadCost). Like the checkpoint write costs it is a
	// modeled quantity, not charged to the rank clocks.
	RestartReadVT float64

	// RankSteps counts the application steps each rank completed; the
	// conformance engine derives its trigger sweep from rank 0's count.
	RankSteps []int64

	// StateDigest is a canonical hash of every rank's final application
	// snapshot, set only when the job ran to completion without errors.
	// Two runs of the same deterministic program — with or without a
	// checkpoint/restart in between — must produce identical digests; this
	// is the equality the conformance engine checks.
	StateDigest string
}

// newAlgorithm wires up the requested algorithm.
func newAlgorithm(name string, coord *ckpt.Coordinator) (ckpt.Algorithm, error) {
	switch name {
	case AlgoNative, "":
		a := ckpt.NewNative()
		coord.SetAlgorithm(a)
		return a, nil
	case Algo2PC:
		return twopc.New(coord), nil
	case AlgoCC:
		return core.New(coord), nil
	}
	return nil, fmt.Errorf("rt: unknown algorithm %q", name)
}

func (cfg *Config) validate() error {
	if cfg.Ranks <= 0 {
		return fmt.Errorf("rt: invalid rank count %d", cfg.Ranks)
	}
	if cfg.PPN <= 0 {
		return fmt.Errorf("rt: invalid ranks-per-node %d", cfg.PPN)
	}
	if cfg.Checkpoint != nil && (cfg.Algorithm == AlgoNative || cfg.Algorithm == "") {
		return fmt.Errorf("rt: the native baseline cannot checkpoint")
	}
	return nil
}

// Run executes factory-created apps, one per rank, to completion (or to a
// checkpoint-exit). It is the moral equivalent of mpirun under MANA.
func Run(cfg Config, factory func(rank int) App) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	w := mpi.NewWorld(cfg.Ranks, netmodel.New(cfg.Params, cfg.PPN))
	coord, err := newCoordinator(w, cfg.Checkpoint)
	if err != nil {
		return nil, err
	}
	if _, err := newAlgorithm(cfg.Algorithm, coord); err != nil {
		return nil, err
	}
	return runJob(cfg, w, coord, factory, nil)
}

// newCoordinator builds the checkpoint coordinator for a job, applying the
// plan's capture tuning (padded image sizes, capture fan-out) and attaching
// the commit store (resuming its chain if it already holds epochs).
func newCoordinator(w *mpi.World, plan *CkptPlan) (*ckpt.Coordinator, error) {
	mode := ckpt.ContinueAfterCapture
	if plan != nil {
		mode = plan.Mode
	}
	coord := ckpt.NewCoordinator(w, mode)
	if plan != nil {
		coord.PaddedBytesPerRank = plan.PaddedBytesPerRank
		coord.CaptureWorkers = plan.CaptureWorkers
		coord.Async = plan.Async
		coord.Incremental = plan.Incremental
		coord.Delta = plan.Delta
		coord.CDC = plan.CDC
		coord.Codec = plan.Codec
		coord.Tier = plan.Tier
		coord.StreamBudgetBytes = plan.StreamBudgetBytes
		coord.KeepEpochs = plan.KeepEpochs
		coord.CompactEvery = plan.CompactEvery
		coord.DrainSched = plan.DrainSched
		coord.JobID = plan.JobID
		coord.DrainPriority = plan.DrainPriority
		coord.FallbackWaitVT = plan.FallbackWaitVT
		coord.AdmitBacklogBytes = plan.AdmitBacklogBytes
		store := plan.Store
		if store == nil && (plan.Incremental || plan.Delta || plan.CDC || plan.KeepEpochs > 0 || plan.CompactEvery > 0) {
			// Incremental reuse needs epochs to diff against (and the
			// lifecycle policies need epochs to manage); default to an
			// in-memory store when the plan names none.
			store = ckpt.NewMemStore()
		}
		if err := coord.SetStore(store); err != nil {
			return nil, err
		}
	}
	return coord, nil
}

// runJob drives the rank goroutines over a prepared world. images, when
// non-nil, holds per-rank restart images.
func runJob(cfg Config, w *mpi.World, coord *ckpt.Coordinator, factory func(rank int) App, img *ckpt.JobImage) (*Report, error) {
	var (
		wg       sync.WaitGroup
		firstErr error
		errMu    sync.Mutex
		appName  atomic.Value

		// Per-rank results, each written only by its own rank goroutine and
		// read after wg.Wait.
		rankSteps = make([]int64, cfg.Ranks)
		finalSnap = make([][]byte, cfg.Ranks)

		// Checkpoint scheduling: the next request time, advanced by Every
		// after each successful request (periodic checkpointing).
		ckptMu      sync.Mutex
		nextCkptVT  = math.Inf(1)
		atStepFired = false
	)
	if cfg.Checkpoint != nil && cfg.Checkpoint.AtStep <= 0 {
		nextCkptVT = cfg.Checkpoint.AtVT
	}
	maybeRequest := func(rank int, now float64, stepsDone int64) {
		ckptMu.Lock()
		defer ckptMu.Unlock()
		if plan := cfg.Checkpoint; plan.AtStep > 0 && !atStepFired {
			// Deterministic step-indexed trigger: raised by rank 0 at the
			// boundary after its AtStep-th completed step.
			if rank != 0 || stepsDone < int64(plan.AtStep) {
				return
			}
			if coord.RequestCheckpoint(now) {
				atStepFired = true
				if plan.Every > 0 && plan.Mode == ckpt.ContinueAfterCapture {
					nextCkptVT = now + plan.Every
				}
			}
			return
		}
		if now < nextCkptVT {
			return
		}
		if coord.RequestCheckpoint(now) {
			if cfg.Checkpoint.Every > 0 && cfg.Checkpoint.Mode == ckpt.ContinueAfterCapture {
				nextCkptVT = now + cfg.Checkpoint.Every
			} else {
				nextCkptVT = math.Inf(1)
			}
		}
	}
	recordErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	// Deadlock watchdog: a wedged job aborts with per-rank wait sites and the
	// coordinator's drain state instead of hanging the host until -timeout.
	if cfg.StallTimeout >= 0 {
		stopWatchdog := w.StartWatchdog(cfg.StallTimeout, coord.DebugString)
		defer stopWatchdog()
	}

	// Startup barrier: every rank must have created its protocol instance and
	// finished Setup before any rank starts stepping. Without it, a fast rank
	// can raise a checkpoint request while a slow rank's protocol state does
	// not exist yet — the algorithm's target computation would read a nil
	// rank. Real MPI synchronizes the same way inside MPI_Init.
	var setupWG sync.WaitGroup
	setupWG.Add(cfg.Ranks)
	setupCh := make(chan struct{})
	go func() {
		setupWG.Wait()
		close(setupCh)
	}()

	// Restart barrier: every rank must finish restoring its image — in
	// particular re-injecting its drained in-flight messages — before ANY
	// rank resumes sending. Otherwise a fast-restarting peer's new message
	// could overtake a drained one from the same sender and break the
	// non-overtaking (FIFO) guarantee. Real MANA synchronizes restart the
	// same way before returning control to user code.
	var restoreWG sync.WaitGroup
	restoredCh := make(chan struct{})
	if img != nil {
		restoreWG.Add(cfg.Ranks)
		go func() {
			restoreWG.Wait()
			close(restoredCh)
		}()
	}

	for r := 0; r < cfg.Ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			var setupOnce sync.Once
			markSetup := func() { setupOnce.Do(setupWG.Done) }
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					markSetup() // never strand peers at the startup barrier
					if err, ok := p.(error); ok && errors.Is(err, errTerminated) {
						return // checkpoint-and-exit unwind
					}
					if ab, ok := p.(mpi.AbortError); ok {
						// The world was torn down (watchdog or a failed
						// peer); the diagnostic error is already recorded
						// by whoever aborted first.
						recordErr(ab.Err)
						coord.FinishRank(rank)
						return
					}
					// Surface rank panics (erroneous MPI programs, contract
					// violations) as run errors rather than crashing the host,
					// and tear down the world so peers blocked on this rank
					// fail fast instead of deadlocking.
					err := fmt.Errorf("rank %d: panic: %v", rank, p)
					recordErr(err)
					w.Abort(err)
					coord.FinishRank(rank)
				}
			}()

			app := factory(rank)
			if rank == 0 {
				appName.Store(app.Name())
			}
			p := w.Proc(rank)
			proto := coord.Algo.NewRank(p, w.WorldComm(rank))
			env := newEnv(p, proto, coord, app, cfg.Checkpoint != nil)

			hooks := ckpt.RankHooks{
				AppSnapshot:   app.Snapshot,
				ProtoSnapshot: proto.Snapshot,
				ClockVT:       p.Clk.Now,
				SetClock:      p.Clk.Set,
				PendingRecvs:  env.pendingRecvDescs,
			}
			if ss, ok := app.(StreamSnapshotter); ok {
				// Streaming capture fast path: the app serializes straight
				// into the coordinator's buffer (must match Snapshot's bytes).
				hooks.AppSnapshotTo = ss.SnapshotTo
			}
			coord.RegisterRank(rank, hooks)

			env.inSetup = true
			if err := app.Setup(env); err != nil {
				recordErr(fmt.Errorf("rank %d setup: %w", rank, err))
				w.Abort(err)
				coord.FinishRank(rank)
				return
			}
			env.inSetup = false

			// Join the startup barrier (see above). An abort while waiting
			// means a peer failed during setup.
			markSetup()
			p.SetWaitSite("startup-barrier")
			select {
			case <-setupCh:
			case <-w.AbortChan():
				panic(mpi.AbortError{Err: w.AbortErr()})
			}
			p.SetWaitSite("")

			// Restart path: restore state, synchronize with all ranks, then
			// resume the parked operation.
			if img != nil {
				var once sync.Once
				markRestored := func() { once.Do(restoreWG.Done) }
				defer markRestored() // cover early error paths
				ri := &img.Images[rank]
				err := restoreFromImage(env, app, proto, p, img, ri)
				markRestored()
				if err != nil {
					recordErr(fmt.Errorf("rank %d restore: %w", rank, err))
					w.Abort(err)
					coord.FinishRank(rank)
					return
				}
				p.SetWaitSite("restore-barrier")
				select {
				case <-restoredCh: // all injections visible before anyone resumes
				case <-w.AbortChan():
					panic(mpi.AbortError{Err: w.AbortErr()})
				}
				p.SetWaitSite("")
				if err := resumePending(env, ri); err != nil {
					recordErr(fmt.Errorf("rank %d resume: %w", rank, err))
					w.Abort(err)
					coord.FinishRank(rank)
					return
				}
				if ri.Desc.Kind == ckpt.ParkDone {
					// The rank had already finished when the checkpoint was
					// captured; its restored state is its final state.
					if snap, err := app.Snapshot(); err == nil {
						finalSnap[rank] = snap
					} else {
						recordErr(fmt.Errorf("rank %d final snapshot: %w", rank, err))
					}
					coord.FinishRank(rank)
					return
				}
			}

			for {
				if cfg.Checkpoint != nil {
					maybeRequest(rank, p.Clk.Now(), rankSteps[rank])
				}
				env.stepBoundary()
				if out := proto.AtBoundary(&ckpt.Descriptor{Kind: ckpt.ParkBoundary}); out == ckpt.Terminated {
					return
				}
				more, err := app.Step(env)
				if err != nil {
					recordErr(fmt.Errorf("rank %d step: %w", rank, err))
					w.Abort(err)
					break
				}
				rankSteps[rank]++
				if !more {
					break
				}
			}
			if out := proto.AtBoundary(&ckpt.Descriptor{Kind: ckpt.ParkDone}); out == ckpt.Terminated {
				return
			}
			// Record the rank's final upper-half state for the job digest.
			if snap, err := app.Snapshot(); err == nil {
				finalSnap[rank] = snap
			} else {
				recordErr(fmt.Errorf("rank %d final snapshot: %w", rank, err))
			}
			coord.FinishRank(rank)
		}(r)
	}
	wg.Wait()

	rep := &Report{
		Algorithm: coord.Algo.Name(),
		Ranks:     cfg.Ranks,
		PPN:       cfg.PPN,
		RuntimeVT: w.MaxTime(),
		Completed: !coord.Terminated(),
		RankSteps: rankSteps,
	}
	if n, ok := appName.Load().(string); ok {
		rep.App = n
	}
	for r := 0; r < cfg.Ranks; r++ {
		rep.Counters.Add(w.Proc(r).Ct)
	}
	rep.Rates = trace.RatesOf(&rep.Counters, cfg.Ranks, rep.RuntimeVT)

	errMu.Lock()
	jobErr := firstErr
	errMu.Unlock()
	if rep.Completed && jobErr == nil {
		rep.StateDigest = digestOf(finalSnap)
	}

	// The coordinator accounts padded image sizes at capture time, so the
	// standalone stats and every CheckpointHistory entry already agree.
	if image, stats, err := coord.Result(); image != nil {
		rep.Image = image
		rep.Checkpoint = &stats
		rep.CheckpointHistory = coord.History()
		if err != nil {
			return rep, err
		}
	}
	errMu.Lock()
	defer errMu.Unlock()
	return rep, firstErr
}

// digestOf hashes every rank's final snapshot into one canonical job digest.
// Snapshots are length-prefixed so rank boundaries cannot alias.
func digestOf(snaps [][]byte) string {
	h := sha256.New()
	var pfx [8]byte
	for _, s := range snaps {
		if s == nil {
			return "" // a rank produced no snapshot: no meaningful digest
		}
		binary.LittleEndian.PutUint64(pfx[:], uint64(len(s)))
		h.Write(pfx[:])
		h.Write(s)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Restart rebuilds a job from a checkpoint image — a fresh world (the new
// lower half), replayed Setup, restored upper halves — and runs it to
// completion.
//
// The configuration must run the same program shape (rank count and
// algorithm), but the GEOMETRY may differ: a job captured at one PPN can be
// restarted onto a different ranks-per-node placement (and therefore a
// different node count) — MANA's allocation-chaining scenario, where the
// network-agnostic image outlives the allocation it was taken on. Only the
// lower half changes: the storage/network model places ranks on the new
// nodes, while the restored upper halves are placement-free.
func Restart(cfg Config, img *ckpt.JobImage, factory func(rank int) App) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if img.Ranks != cfg.Ranks {
		return nil, fmt.Errorf("rt: image is %d ranks, config is %d (rank counts must match; PPN may differ)",
			img.Ranks, cfg.Ranks)
	}
	if cfg.Algorithm != img.Algorithm {
		return nil, fmt.Errorf("rt: image was captured under %q, config requests %q",
			img.Algorithm, cfg.Algorithm)
	}
	w := mpi.NewWorld(cfg.Ranks, netmodel.New(cfg.Params, cfg.PPN))
	coord, err := newCoordinator(w, cfg.Checkpoint)
	if err != nil {
		return nil, err
	}
	if _, err := newAlgorithm(cfg.Algorithm, coord); err != nil {
		return nil, err
	}
	rep, err := runJob(cfg, w, coord, factory, img)
	if rep != nil {
		// A self-contained image is a depth-1 read: one sequential scan of
		// the whole (possibly padded) image off the parallel filesystem.
		// RestartFromStore overrides this with the chain-aware fan-in.
		rep.RestartReadVT = w.Model.RestartReadTime(img.TotalBytes(), nodesOf(cfg))
	}
	return rep, err
}

// nodesOf returns the node count of a job's placement.
func nodesOf(cfg Config) int { return (cfg.Ranks + cfg.PPN - 1) / cfg.PPN }

// RestartFromStore rebuilds a job from a checkpoint store epoch: the epoch's
// manifest is read, every shard resolved through the reference chain
// (incremental captures record unchanged shards as references into earlier
// epochs), verified, and decoded, and the job restarts exactly as from an
// in-memory image. epoch < 0 selects the store's newest sealed epoch.
//
// The report's RestartReadVT prices the chain, not a flat image: the read
// set is the manifest's resolved shard fan-in (ckpt.ReadSetOf), charged on
// the tier the epoch was committed to, so a deep incremental chain restarts
// measurably slower than a fresh full capture of the same bytes.
func RestartFromStore(cfg Config, store ckpt.Store, epoch int, factory func(rank int) App) (*Report, error) {
	if epoch < 0 {
		latest, err := ckpt.LatestEpoch(store)
		if err != nil {
			return nil, err
		}
		epoch = latest
	}
	man, err := store.GetManifest(epoch)
	if err != nil {
		return nil, err
	}
	// LoadJobImage validates chain resolution before touching any shard: a
	// reference into a missing or unsealed parent epoch fails with one
	// descriptive error (the same check ckpt.ResolveReadSet fronts for
	// callers that only price), never a mispriced read set or a confusing
	// per-shard fetch failure mid-restore.
	img, err := ckpt.LoadJobImage(store, epoch)
	if err != nil {
		return nil, err
	}
	rep, err := Restart(cfg, img, factory)
	if rep != nil {
		m := netmodel.New(cfg.Params, cfg.PPN) // cfg validated by Restart
		rep.RestartReadVT = m.RestartReadCost(
			netmodel.StorageTier(man.Tier), ckpt.ReadSetOf(man), nodesOf(cfg))
	}
	return rep, err
}

// restoreFromImage restores one rank's upper half: application state,
// protocol state, clock, and the drained in-flight messages. It must
// complete on every rank (the runner's restart barrier) before any rank
// resumes execution.
func restoreFromImage(env *Env, app App, proto ckpt.Protocol, p *mpi.Proc, img *ckpt.JobImage, ri *ckpt.RankImage) error {
	if err := app.Restore(ri.App); err != nil {
		return err
	}
	if err := proto.Restore(ri.Proto); err != nil {
		return err
	}
	// All ranks resume at the common capture time; the restart I/O cost is
	// modeled by the harness (Figure 9), not charged to the job clock.
	p.Clk.Set(img.CaptureVT)

	// Re-inject drained in-flight messages: they are available immediately.
	if len(ri.Inflight) > 0 {
		p.World().InjectDrained(p.Rank(), ri.Inflight, img.CaptureVT)
	}
	return nil
}

// resumePending re-issues whatever operation the rank was parked on.
func resumePending(env *Env, ri *ckpt.RankImage) error {
	switch ri.Desc.Kind {
	case ckpt.ParkPreCollective, ckpt.ParkInBarrier:
		// Re-post receives that were outstanding, then re-issue the pending
		// collective (for 2PC the wrapper re-inserts its barrier first).
		env.repostRecvs(ri.Desc.Recvs)
		if ri.Desc.Coll == nil {
			return fmt.Errorf("image parked %v without a collective descriptor", ri.Desc.Kind)
		}
		env.execCollDesc(ri.Desc.Coll)
		env.stepBoundary()
	case ckpt.ParkInWait:
		ids := env.repostRecvs(ri.Desc.Recvs)
		env.WaitAll(ids...)
		env.stepBoundary()
	case ckpt.ParkBoundary, ckpt.ParkDone, ckpt.ParkNone:
		// Nothing pending.
	default:
		return fmt.Errorf("unknown park kind %v in image", ri.Desc.Kind)
	}
	return nil
}
