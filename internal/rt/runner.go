package rt

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"mana/internal/ckpt"
	"mana/internal/core"
	"mana/internal/mpi"
	"mana/internal/netmodel"
	"mana/internal/trace"
	"mana/internal/twopc"
)

// Algorithm names accepted by Config.Algorithm.
const (
	AlgoNative = "native"
	Algo2PC    = "2pc"
	AlgoCC     = "cc"
)

// CkptPlan schedules checkpointing during a run.
type CkptPlan struct {
	// AtVT requests the (first) checkpoint when any rank's virtual clock
	// first reaches this time (seconds).
	AtVT float64
	// Every, when positive, requests further checkpoints at this virtual
	// period after each capture — the production pattern of periodic
	// checkpoints during a long run. Only meaningful with
	// ContinueAfterCapture.
	Every float64
	// Mode selects continue-in-place or exit-for-restart.
	Mode ckpt.Mode
	// PaddedBytesPerRank, when positive, overrides the measured image size
	// in the storage model (to reproduce the paper's image sizes).
	PaddedBytesPerRank int64
}

// Config describes one job.
type Config struct {
	Ranks      int
	PPN        int // ranks per node
	Params     netmodel.Params
	Algorithm  string // AlgoNative, Algo2PC, or AlgoCC
	Checkpoint *CkptPlan
}

// Report summarizes one run.
type Report struct {
	App       string
	Algorithm string
	Ranks     int
	PPN       int

	// RuntimeVT is the job's virtual makespan (max rank clock at exit).
	RuntimeVT float64
	Counters  trace.Counters
	Rates     trace.Rates

	// Checkpoint results (nil if no checkpoint was captured). With periodic
	// checkpointing, Checkpoint/Image describe the most recent capture and
	// CheckpointHistory lists them all.
	Checkpoint        *ckpt.CheckpointStats
	Image             *ckpt.JobImage
	CheckpointHistory []ckpt.CheckpointStats

	// Completed is false when the job exited at a checkpoint (ExitAfterCapture).
	Completed bool
}

// newAlgorithm wires up the requested algorithm.
func newAlgorithm(name string, coord *ckpt.Coordinator) (ckpt.Algorithm, error) {
	switch name {
	case AlgoNative, "":
		a := ckpt.NewNative()
		coord.SetAlgorithm(a)
		return a, nil
	case Algo2PC:
		return twopc.New(coord), nil
	case AlgoCC:
		return core.New(coord), nil
	}
	return nil, fmt.Errorf("rt: unknown algorithm %q", name)
}

func (cfg *Config) validate() error {
	if cfg.Ranks <= 0 {
		return fmt.Errorf("rt: invalid rank count %d", cfg.Ranks)
	}
	if cfg.PPN <= 0 {
		return fmt.Errorf("rt: invalid ranks-per-node %d", cfg.PPN)
	}
	if cfg.Checkpoint != nil && (cfg.Algorithm == AlgoNative || cfg.Algorithm == "") {
		return fmt.Errorf("rt: the native baseline cannot checkpoint")
	}
	return nil
}

// Run executes factory-created apps, one per rank, to completion (or to a
// checkpoint-exit). It is the moral equivalent of mpirun under MANA.
func Run(cfg Config, factory func(rank int) App) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	w := mpi.NewWorld(cfg.Ranks, netmodel.New(cfg.Params, cfg.PPN))
	mode := ckpt.ContinueAfterCapture
	if cfg.Checkpoint != nil {
		mode = cfg.Checkpoint.Mode
	}
	coord := ckpt.NewCoordinator(w, mode)
	if _, err := newAlgorithm(cfg.Algorithm, coord); err != nil {
		return nil, err
	}
	return runJob(cfg, w, coord, factory, nil)
}

// runJob drives the rank goroutines over a prepared world. images, when
// non-nil, holds per-rank restart images.
func runJob(cfg Config, w *mpi.World, coord *ckpt.Coordinator, factory func(rank int) App, img *ckpt.JobImage) (*Report, error) {
	var (
		wg       sync.WaitGroup
		firstErr error
		errMu    sync.Mutex
		appName  atomic.Value

		// Checkpoint scheduling: the next request time, advanced by Every
		// after each successful request (periodic checkpointing).
		ckptMu     sync.Mutex
		nextCkptVT = math.Inf(1)
	)
	if cfg.Checkpoint != nil {
		nextCkptVT = cfg.Checkpoint.AtVT
	}
	maybeRequest := func(now float64) {
		ckptMu.Lock()
		defer ckptMu.Unlock()
		if now < nextCkptVT {
			return
		}
		if coord.RequestCheckpoint(now) {
			if cfg.Checkpoint.Every > 0 && cfg.Checkpoint.Mode == ckpt.ContinueAfterCapture {
				nextCkptVT = now + cfg.Checkpoint.Every
			} else {
				nextCkptVT = math.Inf(1)
			}
		}
	}
	recordErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	// Restart barrier: every rank must finish restoring its image — in
	// particular re-injecting its drained in-flight messages — before ANY
	// rank resumes sending. Otherwise a fast-restarting peer's new message
	// could overtake a drained one from the same sender and break the
	// non-overtaking (FIFO) guarantee. Real MANA synchronizes restart the
	// same way before returning control to user code.
	var restoreWG sync.WaitGroup
	restoredCh := make(chan struct{})
	if img != nil {
		restoreWG.Add(cfg.Ranks)
		go func() {
			restoreWG.Wait()
			close(restoredCh)
		}()
	}

	for r := 0; r < cfg.Ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if err, ok := p.(error); ok && errors.Is(err, errTerminated) {
						return // checkpoint-and-exit unwind
					}
					// Surface rank panics (erroneous MPI programs, contract
					// violations) as run errors rather than crashing the host.
					recordErr(fmt.Errorf("rank %d: panic: %v", rank, p))
					coord.FinishRank(rank)
				}
			}()

			app := factory(rank)
			if rank == 0 {
				appName.Store(app.Name())
			}
			p := w.Proc(rank)
			proto := coord.Algo.NewRank(p, w.WorldComm(rank))
			env := newEnv(p, proto, coord, app, cfg.Checkpoint != nil)

			coord.RegisterRank(rank, ckpt.RankHooks{
				AppSnapshot:   app.Snapshot,
				ProtoSnapshot: proto.Snapshot,
				ClockVT:       p.Clk.Now,
				SetClock:      p.Clk.Set,
				PendingRecvs:  env.pendingRecvDescs,
			})

			env.inSetup = true
			if err := app.Setup(env); err != nil {
				recordErr(fmt.Errorf("rank %d setup: %w", rank, err))
				coord.FinishRank(rank)
				return
			}
			env.inSetup = false

			// Restart path: restore state, synchronize with all ranks, then
			// resume the parked operation.
			if img != nil {
				var once sync.Once
				markRestored := func() { once.Do(restoreWG.Done) }
				defer markRestored() // cover early error paths
				ri := &img.Images[rank]
				err := restoreFromImage(env, app, proto, p, img, ri)
				markRestored()
				if err != nil {
					recordErr(fmt.Errorf("rank %d restore: %w", rank, err))
					coord.FinishRank(rank)
					return
				}
				<-restoredCh // all injections visible before anyone resumes
				if err := resumePending(env, ri); err != nil {
					recordErr(fmt.Errorf("rank %d resume: %w", rank, err))
					coord.FinishRank(rank)
					return
				}
				if ri.Desc.Kind == ckpt.ParkDone {
					coord.FinishRank(rank)
					return
				}
			}

			for {
				if cfg.Checkpoint != nil {
					maybeRequest(p.Clk.Now())
				}
				env.stepBoundary()
				if out := proto.AtBoundary(&ckpt.Descriptor{Kind: ckpt.ParkBoundary}); out == ckpt.Terminated {
					return
				}
				more, err := app.Step(env)
				if err != nil {
					recordErr(fmt.Errorf("rank %d step: %w", rank, err))
					break
				}
				if !more {
					break
				}
			}
			if out := proto.AtBoundary(&ckpt.Descriptor{Kind: ckpt.ParkDone}); out == ckpt.Terminated {
				return
			}
			coord.FinishRank(rank)
		}(r)
	}
	wg.Wait()

	rep := &Report{
		Algorithm: coord.Algo.Name(),
		Ranks:     cfg.Ranks,
		PPN:       cfg.PPN,
		RuntimeVT: w.MaxTime(),
		Completed: !coord.Terminated(),
	}
	if n, ok := appName.Load().(string); ok {
		rep.App = n
	}
	for r := 0; r < cfg.Ranks; r++ {
		rep.Counters.Add(w.Proc(r).Ct)
	}
	rep.Rates = trace.RatesOf(&rep.Counters, cfg.Ranks, rep.RuntimeVT)

	if image, stats, err := coord.Result(); image != nil {
		if cfg.Checkpoint != nil {
			image.PaddedBytesPerRank = cfg.Checkpoint.PaddedBytesPerRank
			stats.ImageBytes = image.TotalBytes()
			nodes := (cfg.Ranks + cfg.PPN - 1) / cfg.PPN
			stats.WriteVT = w.Model.CheckpointWriteTime(stats.ImageBytes, nodes)
		}
		rep.Image = image
		rep.Checkpoint = &stats
		rep.CheckpointHistory = coord.History()
		if err != nil {
			return rep, err
		}
	}
	errMu.Lock()
	defer errMu.Unlock()
	return rep, firstErr
}

// Restart rebuilds a job from a checkpoint image — a fresh world (the new
// lower half), replayed Setup, restored upper halves — and runs it to
// completion. The configuration must describe the same job shape.
func Restart(cfg Config, img *ckpt.JobImage, factory func(rank int) App) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if img.Ranks != cfg.Ranks || img.PPN != cfg.PPN {
		return nil, fmt.Errorf("rt: image is %d ranks x %d ppn, config is %d x %d",
			img.Ranks, img.PPN, cfg.Ranks, cfg.PPN)
	}
	if cfg.Algorithm != img.Algorithm {
		return nil, fmt.Errorf("rt: image was captured under %q, config requests %q",
			img.Algorithm, cfg.Algorithm)
	}
	w := mpi.NewWorld(cfg.Ranks, netmodel.New(cfg.Params, cfg.PPN))
	mode := ckpt.ContinueAfterCapture
	if cfg.Checkpoint != nil {
		mode = cfg.Checkpoint.Mode
	}
	coord := ckpt.NewCoordinator(w, mode)
	if _, err := newAlgorithm(cfg.Algorithm, coord); err != nil {
		return nil, err
	}
	return runJob(cfg, w, coord, factory, img)
}

// restoreFromImage restores one rank's upper half: application state,
// protocol state, clock, and the drained in-flight messages. It must
// complete on every rank (the runner's restart barrier) before any rank
// resumes execution.
func restoreFromImage(env *Env, app App, proto ckpt.Protocol, p *mpi.Proc, img *ckpt.JobImage, ri *ckpt.RankImage) error {
	if err := app.Restore(ri.App); err != nil {
		return err
	}
	if err := proto.Restore(ri.Proto); err != nil {
		return err
	}
	// All ranks resume at the common capture time; the restart I/O cost is
	// modeled by the harness (Figure 9), not charged to the job clock.
	p.Clk.Set(img.CaptureVT)

	// Re-inject drained in-flight messages: they are available immediately.
	if len(ri.Inflight) > 0 {
		p.World().InjectDrained(p.Rank(), ri.Inflight, img.CaptureVT)
	}
	return nil
}

// resumePending re-issues whatever operation the rank was parked on.
func resumePending(env *Env, ri *ckpt.RankImage) error {
	switch ri.Desc.Kind {
	case ckpt.ParkPreCollective, ckpt.ParkInBarrier:
		// Re-post receives that were outstanding, then re-issue the pending
		// collective (for 2PC the wrapper re-inserts its barrier first).
		env.repostRecvs(ri.Desc.Recvs)
		if ri.Desc.Coll == nil {
			return fmt.Errorf("image parked %v without a collective descriptor", ri.Desc.Kind)
		}
		env.execCollDesc(ri.Desc.Coll)
		env.stepBoundary()
	case ckpt.ParkInWait:
		ids := env.repostRecvs(ri.Desc.Recvs)
		env.WaitAll(ids...)
		env.stepBoundary()
	case ckpt.ParkBoundary, ckpt.ParkDone, ckpt.ParkNone:
		// Nothing pending.
	default:
		return fmt.Errorf("unknown park kind %v in image", ri.Desc.Kind)
	}
	return nil
}
