package rt

import (
	"bytes"
	"encoding/gob"
	"testing"

	"mana/internal/ckpt"
	"mana/internal/mpi"
	"mana/internal/netmodel"
)

// frostApp is a minimal low-churn workload for chain tests (the registered
// straggler proxy lives in internal/apps, which rt cannot import): ranks 0-1
// stay hot on their own sub-communicator while the cold majority does two
// steps and freezes, so periodic incremental captures record the cold
// shards as references.
type frostApp struct {
	hot    bool
	sub    int
	Target int
	Iter   int
	Sum    []byte
	State  []float64
}

func newFrostApp(rank, iters int) *frostApp {
	a := &frostApp{hot: rank < 2, Target: 2, Sum: make([]byte, 8), State: make([]float64, 128)}
	if a.hot {
		a.Target = iters
	}
	for i := range a.State {
		a.State[i] = float64(rank) + float64(i)/128
	}
	return a
}

func (a *frostApp) Name() string { return "frost" }
func (a *frostApp) Setup(env *Env) error {
	color := 1
	if a.hot {
		color = 0
	}
	a.sub = env.Split(WorldVID, color, env.Rank())
	return nil
}
func (a *frostApp) Buffer(id string) []byte {
	if id == "sum" {
		return a.Sum
	}
	return nil
}
func (a *frostApp) Step(env *Env) (bool, error) {
	if a.Iter >= a.Target {
		return false, nil
	}
	if a.hot {
		a.State[a.Iter%len(a.State)] += float64(a.Iter)
	}
	copy(a.Sum, mpi.F64Bytes([]float64{a.State[0]}))
	a.Iter++
	env.Allreduce(a.sub, mpi.OpSum, "sum")
	return a.Iter < a.Target, nil
}
func (a *frostApp) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(struct {
		Target, Iter int
		Sum          []byte
		State        []float64
	}{a.Target, a.Iter, a.Sum, a.State})
	return buf.Bytes(), err
}
func (a *frostApp) Restore(data []byte) error {
	var st struct {
		Target, Iter int
		Sum          []byte
		State        []float64
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	a.Target, a.Iter = st.Target, st.Iter
	copy(a.Sum, st.Sum)
	copy(a.State, st.State)
	return nil
}

// TestTieredCheckpointPlan: captures charged to the burst-buffer tier must
// stall the job less than direct-to-PFS captures (sync pays the faster
// write, async only the cheaper open latency), stamp the sealed manifests
// with the tier, accrue a background PFS drain, and restart digest-identical
// with a chain-aware RestartReadVT on the right tier.
func TestTieredCheckpointPlan(t *testing.T) {
	const iters = 40
	const padded = 64 << 20
	_, base := runToCompletion(t, testConfig(8, AlgoCC), iters)

	run := func(tier netmodel.StorageTier, async bool, store ckpt.Store) *Report {
		cfg := testConfig(8, AlgoCC)
		cfg.Checkpoint = &CkptPlan{
			AtVT: base.RuntimeVT / 2, Mode: ckpt.ContinueAfterCapture,
			Tier: tier, Async: async, PaddedBytesPerRank: padded, Store: store,
		}
		rep, err := Run(cfg, func(rank int) App { return newRingApp(iters) })
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Completed || len(rep.CheckpointHistory) != 1 {
			t.Fatalf("bad tiered run: completed=%v captures=%d", rep.Completed, len(rep.CheckpointHistory))
		}
		if rep.StateDigest != base.StateDigest {
			t.Fatalf("tier accounting changed the computation: %.12s != %.12s",
				rep.StateDigest, base.StateDigest)
		}
		return rep
	}

	pfsSync := run(netmodel.TierPFS, false, nil).CheckpointHistory[0]
	bbSync := run(netmodel.TierBurstBuffer, false, nil).CheckpointHistory[0]
	bbAsync := run(netmodel.TierBurstBuffer, true, nil).CheckpointHistory[0]

	if pfsSync.TierDrainVT != 0 {
		t.Fatalf("direct-PFS capture reported a tier drain: %+v", pfsSync)
	}
	if bbSync.StallVT >= pfsSync.StallVT {
		t.Fatalf("burst sync stall %g not below PFS sync stall %g", bbSync.StallVT, pfsSync.StallVT)
	}
	if bbAsync.StallVT >= bbSync.StallVT {
		t.Fatalf("burst async stall %g not below burst sync stall %g", bbAsync.StallVT, bbSync.StallVT)
	}
	params := netmodel.PerlmutterLike()
	if bbAsync.StallVT != params.BurstLatency {
		t.Fatalf("burst async stall %g, want the burst open latency %g", bbAsync.StallVT, params.BurstLatency)
	}
	for _, st := range []ckpt.CheckpointStats{bbSync, bbAsync} {
		if st.Tier != netmodel.TierBurstBuffer || st.TierDrainVT <= 0 {
			t.Fatalf("burst capture not drain-accounted: %+v", st)
		}
	}

	// Store-committed burst chain: manifests are stamped, the restart reads
	// off the burst tier, and RestartReadVT prices the resolved chain.
	fs, err := ckpt.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	run(netmodel.TierBurstBuffer, true, fs)
	man, err := fs.GetManifest(0)
	if err != nil {
		t.Fatal(err)
	}
	if man.Tier != int(netmodel.TierBurstBuffer) {
		t.Fatalf("sealed manifest tier = %d, want burst", man.Tier)
	}
	rep, err := RestartFromStore(testConfig(8, AlgoCC), fs, -1, func(rank int) App { return newRingApp(iters) })
	if err != nil {
		t.Fatal(err)
	}
	if rep.StateDigest != base.StateDigest {
		t.Fatalf("tiered restart diverged: %.12s != %.12s", rep.StateDigest, base.StateDigest)
	}
	m := netmodel.New(params, 4)
	wantRead := m.RestartReadCost(netmodel.TierBurstBuffer, ckpt.ReadSetOf(man), 2)
	if rep.RestartReadVT != wantRead {
		t.Fatalf("RestartReadVT = %g, want chain fan-in %g", rep.RestartReadVT, wantRead)
	}
}

// TestRestartReadAccounting: a plain image restart charges the depth-1 full
// read, and a chained store restart charges strictly more for the same
// payload once older epochs enter the read set.
func TestRestartReadAccounting(t *testing.T) {
	const iters = 40
	_, base := runToCompletion(t, testConfig(4, AlgoCC), iters)

	// Image restart: depth-1 read of the whole padded image.
	cfg := testConfig(4, AlgoCC)
	cfg.Checkpoint = &CkptPlan{
		AtVT: base.RuntimeVT / 2, Mode: ckpt.ExitAfterCapture, PaddedBytesPerRank: 32 << 20,
	}
	rep, err := Run(cfg, func(rank int) App { return newRingApp(iters) })
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Restart(testConfig(4, AlgoCC), rep.Image, func(rank int) App { return newRingApp(iters) })
	if err != nil {
		t.Fatal(err)
	}
	m := netmodel.New(netmodel.PerlmutterLike(), 4)
	if want := m.RestartReadTime(rep.Image.TotalBytes(), 1); rep2.RestartReadVT != want {
		t.Fatalf("image RestartReadVT = %g, want %g", rep2.RestartReadVT, want)
	}
	if rep2.StateDigest != base.StateDigest {
		t.Fatal("image restart diverged")
	}

	// Incremental chain on a low-churn job: restarting an epoch whose cold
	// shards reference parents must out-price a depth-1 read of the same
	// bytes.
	const frostIters = 24
	frostGolden, err := Run(testConfig(8, AlgoCC), func(rank int) App { return newFrostApp(rank, frostIters) })
	if err != nil {
		t.Fatal(err)
	}
	fs, err := ckpt.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg = testConfig(8, AlgoCC)
	cfg.Checkpoint = &CkptPlan{
		AtStep: 4, Every: 1e-6, Mode: ckpt.ContinueAfterCapture,
		Store: fs, Incremental: true, PaddedBytesPerRank: 32 << 20,
	}
	if _, err := Run(cfg, func(rank int) App { return newFrostApp(rank, frostIters) }); err != nil {
		t.Fatal(err)
	}
	latest, err := ckpt.LatestEpoch(fs)
	if err != nil {
		t.Fatal(err)
	}
	man, err := fs.GetManifest(latest)
	if err != nil {
		t.Fatal(err)
	}
	reads := ckpt.ReadSetOf(man)
	if len(reads) < 2 {
		t.Fatalf("low-churn chain produced no cross-epoch references (%d epochs)", latest+1)
	}
	rep3, err := RestartFromStore(testConfig(8, AlgoCC), fs, latest, func(rank int) App { return newFrostApp(rank, frostIters) })
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range reads {
		total += r.Bytes
	}
	if flat := m.RestartReadTime(total, 2); rep3.RestartReadVT <= flat {
		t.Fatalf("chained restart read %g not above flat read %g", rep3.RestartReadVT, flat)
	}
	if rep3.StateDigest != frostGolden.StateDigest {
		t.Fatal("chained restart diverged")
	}
}
