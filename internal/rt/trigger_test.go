package rt

import (
	"strings"
	"testing"
	"time"

	"mana/internal/ckpt"
)

// TestAtStepTriggerDeterministic: the step-indexed trigger must raise the
// request at the identical point of rank 0's execution on every run, so the
// conformance sweep is reproducible.
func TestAtStepTriggerDeterministic(t *testing.T) {
	capture := func() *Report {
		cfg := testConfig(4, AlgoCC)
		cfg.Checkpoint = &CkptPlan{AtStep: 9, Mode: ckpt.ExitAfterCapture}
		rep, err := Run(cfg, func(int) App { return newRingApp(12) })
		if err != nil {
			t.Fatal(err)
		}
		if rep.Image == nil {
			t.Fatal("no checkpoint captured")
		}
		return rep
	}
	a, b := capture(), capture()
	// Virtual time is a pure function of the program, so the step-indexed
	// request must land at the identical virtual instant on every run. (The
	// capture point may differ: the drain frontier depends on where the
	// other ranks happened to be.)
	if a.Checkpoint.RequestVT != b.Checkpoint.RequestVT {
		t.Fatalf("request times differ: %g vs %g", a.Checkpoint.RequestVT, b.Checkpoint.RequestVT)
	}
	// Wherever the two captures landed, both must restart into the same
	// final state as an uninterrupted run.
	golden, _ := runToCompletion(t, testConfig(4, AlgoCC), 12)
	for i, rep := range []*Report{a, b} {
		accs := make([]*ringApp, 4)
		rep2, err := Restart(testConfig(4, AlgoCC), rep.Image, func(rank int) App {
			accs[rank] = newRingApp(12)
			return accs[rank]
		})
		if err != nil {
			t.Fatalf("restart %d: %v", i, err)
		}
		if !rep2.Completed {
			t.Fatalf("restart %d incomplete", i)
		}
		if accs[0].Acc != golden {
			t.Fatalf("restart %d: acc %g != golden %g", i, accs[0].Acc, golden)
		}
	}
}

// TestRankStepsReported: completed runs report per-rank step counts.
func TestRankStepsReported(t *testing.T) {
	_, rep := runToCompletion(t, testConfig(4, AlgoCC), 6)
	if len(rep.RankSteps) != 4 {
		t.Fatalf("RankSteps has %d entries", len(rep.RankSteps))
	}
	for r, s := range rep.RankSteps {
		if s <= 0 {
			t.Fatalf("rank %d reported %d steps", r, s)
		}
	}
}

// TestStateDigestStable: two identical runs produce identical digests, and
// a checkpoint-restart cycle reproduces the uninterrupted digest.
func TestStateDigestStable(t *testing.T) {
	_, rep1 := runToCompletion(t, testConfig(4, AlgoCC), 8)
	_, rep2 := runToCompletion(t, testConfig(4, AlgoCC), 8)
	if rep1.StateDigest == "" || rep1.StateDigest != rep2.StateDigest {
		t.Fatalf("digests differ: %q vs %q", rep1.StateDigest, rep2.StateDigest)
	}

	cfg := testConfig(4, AlgoCC)
	cfg.Checkpoint = &CkptPlan{AtStep: 11, Mode: ckpt.ExitAfterCapture}
	rep, err := Run(cfg, func(int) App { return newRingApp(8) })
	if err != nil {
		t.Fatal(err)
	}
	if rep.Image == nil {
		t.Fatal("no checkpoint captured")
	}
	if rep.StateDigest != "" {
		t.Fatal("terminated run must not claim a final-state digest")
	}
	rep3, err := Restart(testConfig(4, AlgoCC), rep.Image, func(int) App { return newRingApp(8) })
	if err != nil {
		t.Fatal(err)
	}
	if rep3.StateDigest != rep1.StateDigest {
		t.Fatalf("restart digest %q != golden %q", rep3.StateDigest, rep1.StateDigest)
	}
}

// failingApp errors in Step on one rank while the others keep communicating.
type failingApp struct {
	*ringApp
	failRank bool
}

func (f *failingApp) Step(env *Env) (bool, error) {
	if f.failRank && f.Iter >= 1 {
		return false, errTestBoom
	}
	return f.ringApp.Step(env)
}

var errTestBoom = &testError{"boom"}

type testError struct{ s string }

func (e *testError) Error() string { return e.s }

// TestRankFailureAbortsPeersFast: when one rank dies, peers blocked on it
// must be torn down promptly with the original error — not hang until the
// test -timeout. This is the failure mode that used to wedge the OSU
// ping-pong test for its full timeout.
func TestRankFailureAbortsPeersFast(t *testing.T) {
	cfg := testConfig(4, AlgoCC)
	cfg.StallTimeout = 500 * time.Millisecond // fallback only; abort should beat it
	start := time.Now()
	_, err := Run(cfg, func(rank int) App {
		return &failingApp{ringApp: newRingApp(50), failRank: rank == 2}
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("run with a failing rank reported success")
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error %q does not carry the rank failure", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("teardown took %v", elapsed)
	}
}

// TestWatchdogDiagnosesWedgedJob: an app that blocks forever on a receive
// nobody sends must be converted into a diagnostic error by the watchdog.
type wedgeApp struct{ ringApp }

func (wa *wedgeApp) Step(env *Env) (bool, error) {
	if env.Rank() == 0 {
		env.Irecv(WorldVID, 1, 99, "ring", 0, 8) // never sent
		env.WaitAll()
		return false, nil
	}
	env.Barrier(WorldVID)
	return false, nil
}

func TestWatchdogDiagnosesWedgedJob(t *testing.T) {
	cfg := testConfig(2, AlgoCC)
	cfg.StallTimeout = 200 * time.Millisecond
	_, err := Run(cfg, func(int) App {
		w := &wedgeApp{}
		w.Ring = make([]byte, 8)
		w.Sum = make([]byte, 8)
		return w
	})
	if err == nil {
		t.Fatal("wedged job reported success")
	}
	for _, want := range []string{"deadlock", "rank 0", "rank 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("diagnostic missing %q: %v", want, err)
		}
	}
}
