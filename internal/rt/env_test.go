package rt

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"

	"mana/internal/ckpt"
	"mana/internal/mpi"
)

// collApp exercises every env collective, folding results into a checksum,
// so the full collective surface (including Gather/Scatter/Scan/
// ReduceScatter, otherwise unused by the proxy workloads) is covered under
// all three algorithms and across checkpoint/restart.
type collApp struct {
	Iters int
	Iter  int
	Phase int
	Check float64

	Small []byte // n*8 bytes: per-rank blocks
	Wide  []byte // n*n*8? kept n*8 for gather outputs
}

func newCollApp(iters, ranks int) *collApp {
	return &collApp{
		Iters: iters,
		Small: make([]byte, 8*ranks),
		Wide:  make([]byte, 8*ranks),
	}
}

func (a *collApp) Name() string { return "coll-surface" }

func (a *collApp) Setup(env *Env) error { return nil }

func (a *collApp) Buffer(id string) []byte {
	switch id {
	case "small":
		return a.Small
	case "wide":
		return a.Wide
	}
	return nil
}

func (a *collApp) fold(v float64) { a.Check = math.Mod(a.Check*1.00007+v, 1e9) }

func (a *collApp) fillSmall(env *Env, base float64) {
	n := env.Size()
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = base + float64(env.Rank())
	}
	copy(a.Small, mpi.F64Bytes(vals))
}

func (a *collApp) Step(env *Env) (bool, error) {
	n := env.Size()
	switch a.Phase {
	case 0: // scan
		a.fillSmall(env, 1)
		a.Phase = 1
		env.Scan(WorldVID, mpi.OpSum, "small")
	case 1:
		a.fold(mpi.BytesF64(a.Small)[0])
		a.fillSmall(env, 2)
		a.Phase = 2
		env.ReduceScatter(WorldVID, mpi.OpSum, "small")
	case 2:
		a.fold(mpi.BytesF64(a.Small)[0])
		a.fillSmall(env, 3)
		a.Phase = 3
		env.Gather(WorldVID, 1, "small", "wide")
	case 3:
		if env.Rank() == 1 {
			a.fold(mpi.BytesF64(a.Wide)[n-1])
		}
		a.fillSmall(env, 4)
		a.Phase = 4
		env.Scatter(WorldVID, 0, "small", "wide")
	case 4:
		a.fold(mpi.BytesF64(a.Wide)[0])
		a.fillSmall(env, 5)
		a.Phase = 5
		env.Reduce(WorldVID, 2, mpi.OpMax, "small")
	case 5:
		if env.Rank() == 2 {
			a.fold(mpi.BytesF64(a.Small)[0])
		}
		a.Iter++
		a.Phase = 0
	}
	return a.Iter < a.Iters, nil
}

func (a *collApp) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(struct {
		Iters, Iter, Phase int
		Check              float64
		Small, Wide        []byte
	}{a.Iters, a.Iter, a.Phase, a.Check, a.Small, a.Wide})
	return buf.Bytes(), err
}

func (a *collApp) Restore(data []byte) error {
	var st struct {
		Iters, Iter, Phase int
		Check              float64
		Small, Wide        []byte
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	a.Iters, a.Iter, a.Phase, a.Check = st.Iters, st.Iter, st.Phase, st.Check
	copy(a.Small, st.Small)
	copy(a.Wide, st.Wide)
	return nil
}

func TestFullCollectiveSurface(t *testing.T) {
	const ranks, iters = 4, 6
	results := map[string]float64{}
	for _, algo := range []string{AlgoNative, Algo2PC, AlgoCC} {
		apps := make([]*collApp, ranks)
		rep, err := Run(testConfig(ranks, algo), func(rank int) App {
			a := newCollApp(iters, ranks)
			apps[rank] = a
			return a
		})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !rep.Completed {
			t.Fatalf("%s did not complete", algo)
		}
		results[algo] = apps[0].Check + apps[1].Check + apps[2].Check
	}
	if results[AlgoNative] != results[Algo2PC] || results[AlgoNative] != results[AlgoCC] {
		t.Fatalf("collective surface results differ across algorithms: %v", results)
	}
	if results[AlgoNative] == 0 {
		t.Fatal("no data flowed")
	}
}

func TestFullCollectiveSurfaceCheckpointRestart(t *testing.T) {
	const ranks, iters = 4, 10
	want := make([]*collApp, ranks)
	base, err := Run(testConfig(ranks, AlgoCC), func(rank int) App {
		a := newCollApp(iters, ranks)
		want[rank] = a
		return a
	})
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint at several points: each must restart to identical results.
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		cfg := testConfig(ranks, AlgoCC)
		cfg.Checkpoint = &CkptPlan{AtVT: base.RuntimeVT * frac, Mode: ckpt.ExitAfterCapture}
		rep, err := Run(cfg, func(rank int) App { return newCollApp(iters, ranks) })
		if err != nil {
			t.Fatalf("frac %.2f: %v", frac, err)
		}
		if rep.Image == nil {
			continue
		}
		got := make([]*collApp, ranks)
		if _, err := Restart(testConfig(ranks, AlgoCC), rep.Image, func(rank int) App {
			a := newCollApp(iters, ranks)
			got[rank] = a
			return a
		}); err != nil {
			t.Fatalf("frac %.2f restart: %v", frac, err)
		}
		for r := range want {
			if got[r].Check != want[r].Check {
				t.Fatalf("frac %.2f rank %d: %v vs %v", frac, r, got[r].Check, want[r].Check)
			}
		}
	}
}

func TestEnvValidation(t *testing.T) {
	// Unknown buffer and unknown comm ids must panic with clear messages.
	bad := &badBufApp{}
	if _, err := Run(testConfig(2, AlgoNative), func(int) App { return bad }); err == nil {
		t.Fatal("unknown buffer accepted")
	}
	bad2 := &badCommApp{}
	if _, err := Run(testConfig(2, AlgoNative), func(int) App { return bad2 }); err == nil {
		t.Fatal("unknown comm accepted")
	}
}

type badBufApp struct{ ringApp }

func (a *badBufApp) Setup(env *Env) error { return nil }
func (a *badBufApp) Step(env *Env) (bool, error) {
	env.Bcast(WorldVID, 0, "no-such-buffer")
	return false, nil
}
func (a *badBufApp) Buffer(string) []byte { return nil }

type badCommApp struct{ ringApp }

func (a *badCommApp) Setup(env *Env) error { return nil }
func (a *badCommApp) Step(env *Env) (bool, error) {
	env.Barrier(42)
	return false, nil
}
func (a *badCommApp) Buffer(string) []byte { return nil }
