package rt

import (
	"math"
	"strings"
	"testing"

	"mana/internal/ckpt"
)

// TestAsyncCheckpointOverlap: with the staged pipeline in overlapped mode
// the job must resume after paying only the storage open latency — the
// transfer time turns into OverlapVT — and still compute the same answer.
// One padded mid-run capture each way keeps the comparison deterministic
// (the padded transfer dominates, and single captures cannot drift in
// count the way chained ones may under host scheduling).
func TestAsyncCheckpointOverlap(t *testing.T) {
	const iters = 60
	const padded = 64 << 20 // per-rank padded image: the transfer term to hide
	want, base := runToCompletion(t, testConfig(8, AlgoCC), iters)

	run := func(async bool) (*Report, float64) {
		cfg := testConfig(8, AlgoCC)
		cfg.Checkpoint = &CkptPlan{
			AtVT: base.RuntimeVT / 2, Mode: ckpt.ContinueAfterCapture,
			Async: async, PaddedBytesPerRank: padded,
		}
		apps := make([]*ringApp, cfg.Ranks)
		rep, err := Run(cfg, func(rank int) App {
			a := newRingApp(iters)
			apps[rank] = a
			return a
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Completed {
			t.Fatal("checkpointed run did not complete")
		}
		if len(rep.CheckpointHistory) != 1 {
			t.Fatalf("expected exactly one capture, got %d", len(rep.CheckpointHistory))
		}
		return rep, apps[0].Acc
	}

	syncRep, syncAcc := run(false)
	asyncRep, asyncAcc := run(true)
	if syncAcc != want || asyncAcc != want {
		t.Fatalf("checkpointing changed the result: sync %v async %v want %v", syncAcc, asyncAcc, want)
	}

	syncSt := syncRep.CheckpointHistory[0]
	if syncSt.OverlapVT != 0 {
		t.Fatalf("synchronous capture reported overlap: %+v", syncSt)
	}
	if math.Abs(syncSt.StallVT-syncSt.WriteVT) > 1e-12 {
		t.Fatalf("synchronous capture must stall the full write: %+v", syncSt)
	}
	asyncSt := asyncRep.CheckpointHistory[0]
	if asyncSt.OverlapVT <= 0 {
		t.Fatalf("async capture has no overlap: %+v", asyncSt)
	}
	if math.Abs(asyncSt.StallVT+asyncSt.OverlapVT-asyncSt.WriteVT) > 1e-9 {
		t.Fatalf("stall+overlap != write time: %+v", asyncSt)
	}
	if asyncSt.StallVT >= syncSt.StallVT {
		t.Fatalf("async stall %g not below sync stall %g", asyncSt.StallVT, syncSt.StallVT)
	}
	// The stall savings must show up in the makespan: the padded transfer
	// stalls the synchronous job but hides behind the asynchronous one.
	if asyncRep.RuntimeVT >= syncRep.RuntimeVT {
		t.Fatalf("async runtime %g not below sync runtime %g", asyncRep.RuntimeVT, syncRep.RuntimeVT)
	}
}

// TestStoreCommitAndRestart: periodic captures committed to a FileStore must
// seal one epoch per capture, and restarting from every sealed epoch must
// reach the uninterrupted run's digest.
func TestStoreCommitAndRestart(t *testing.T) {
	const iters = 40
	_, base := runToCompletion(t, testConfig(6, AlgoCC), iters)
	golden := base.StateDigest
	if golden == "" {
		t.Fatal("golden run produced no digest")
	}

	fs, err := ckpt.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(6, AlgoCC)
	period := base.RuntimeVT / 4
	cfg.Checkpoint = &CkptPlan{
		AtVT: period, Every: period, Mode: ckpt.ContinueAfterCapture,
		Store: fs, Async: true,
	}
	rep, err := Run(cfg, func(rank int) App { return newRingApp(iters) })
	if err != nil {
		t.Fatal(err)
	}
	if rep.StateDigest != golden {
		t.Fatalf("store-committed run diverged: %.12s != %.12s", rep.StateDigest, golden)
	}

	epochs, err := fs.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != len(rep.CheckpointHistory) {
		t.Fatalf("%d sealed epochs for %d captures", len(epochs), len(rep.CheckpointHistory))
	}
	for i, st := range rep.CheckpointHistory {
		if st.Epoch != epochs[i] {
			t.Fatalf("capture %d committed as epoch %d, store lists %d", i, st.Epoch, epochs[i])
		}
		if st.FreshShards != cfg.Ranks || st.ReusedShards != 0 {
			t.Fatalf("non-incremental capture reused shards: %+v", st)
		}
	}
	if faults, err := ckpt.VerifyStore(fs); err != nil || len(faults) != 0 {
		t.Fatalf("store did not verify: faults=%v err=%v", faults, err)
	}
	for _, e := range epochs {
		rep2, err := RestartFromStore(testConfig(6, AlgoCC), fs, e, func(rank int) App { return newRingApp(iters) })
		if err != nil {
			t.Fatalf("restart from epoch %d: %v", e, err)
		}
		if rep2.StateDigest != golden {
			t.Fatalf("restart from epoch %d diverged: %.12s != %.12s", e, rep2.StateDigest, golden)
		}
	}
	// Latest-epoch selection (epoch < 0).
	if rep2, err := RestartFromStore(testConfig(6, AlgoCC), fs, -1, func(rank int) App { return newRingApp(iters) }); err != nil {
		t.Fatal(err)
	} else if rep2.StateDigest != golden {
		t.Fatalf("restart from latest epoch diverged")
	}
}

// TestStoreChainResumes: committing into a store that already holds sealed
// epochs must CONTINUE the chain (numbering after the newest epoch, the
// incremental differ seeded with its manifest), never clobber epoch 0 —
// the restart-then-continue pattern where a new allocation keeps
// checkpointing into the same store.
func TestStoreChainResumes(t *testing.T) {
	const iters = 40
	_, base := runToCompletion(t, testConfig(4, AlgoCC), iters)
	golden := base.StateDigest

	fs, err := ckpt.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runInto := func() *Report {
		cfg := testConfig(4, AlgoCC)
		cfg.Checkpoint = &CkptPlan{
			AtVT: base.RuntimeVT / 3, Mode: ckpt.ContinueAfterCapture,
			Store: fs, Incremental: true,
		}
		rep, err := Run(cfg, func(rank int) App { return newRingApp(iters) })
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	first := runInto()
	second := runInto() // a separate job resuming the same store
	if len(first.CheckpointHistory) == 0 || len(second.CheckpointHistory) == 0 {
		t.Fatal("runs captured nothing")
	}
	firstLast := first.CheckpointHistory[len(first.CheckpointHistory)-1].Epoch
	if got := second.CheckpointHistory[0].Epoch; got != firstLast+1 {
		t.Fatalf("second job committed epoch %d, want the chain to continue at %d", got, firstLast+1)
	}
	// The first job's epochs must remain intact and restartable.
	if faults, err := ckpt.VerifyStore(fs); err != nil || len(faults) != 0 {
		t.Fatalf("resumed chain did not verify: faults=%v err=%v", faults, err)
	}
	epochs, err := fs.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != len(first.CheckpointHistory)+len(second.CheckpointHistory) {
		t.Fatalf("%d sealed epochs after two jobs with %d+%d captures",
			len(epochs), len(first.CheckpointHistory), len(second.CheckpointHistory))
	}
	for _, e := range []int{epochs[0], epochs[len(epochs)-1]} {
		rep, err := RestartFromStore(testConfig(4, AlgoCC), fs, e, func(rank int) App { return newRingApp(iters) })
		if err != nil {
			t.Fatalf("restart from epoch %d: %v", e, err)
		}
		if rep.StateDigest != golden {
			t.Fatalf("restart from epoch %d diverged", e)
		}
	}
}

// TestFailedCaptureNotSealed: a capture that errors (snapshot fault) must
// not seal a durable store epoch — a fresh process cannot see the run's
// error and would restore the broken image as if it were healthy.
func TestFailedCaptureNotSealed(t *testing.T) {
	fs, err := ckpt.NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(4, AlgoCC)
	cfg.Checkpoint = &CkptPlan{AtStep: 3, Mode: ckpt.ExitAfterCapture, Store: fs}
	_, err = Run(cfg, func(rank int) App {
		a := App(newRingApp(20))
		if rank == 1 {
			a = &failingSnapshotApp{App: a}
		}
		return a
	})
	if err == nil {
		t.Fatal("expected a run error from the failing snapshot")
	}
	epochs, err := fs.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 0 {
		t.Fatalf("failed capture sealed %d epoch(s)", len(epochs))
	}
}

// TestSnapshotFailureSurfaces: a rank whose snapshot hook fails mid-capture
// must turn into a run error naming the rank, not a wedge or a silent
// half-written checkpoint.
func TestSnapshotFailureSurfaces(t *testing.T) {
	cfg := testConfig(4, AlgoCC)
	cfg.Checkpoint = &CkptPlan{AtStep: 3, Mode: ckpt.ExitAfterCapture}
	_, err := Run(cfg, func(rank int) App {
		a := App(newRingApp(20))
		if rank == 2 {
			a = &failingSnapshotApp{App: a}
		}
		return a
	})
	if err == nil {
		t.Fatal("expected a run error from the failing snapshot")
	}
	if !strings.Contains(err.Error(), "rank 2") || !strings.Contains(err.Error(), "snapshot") {
		t.Fatalf("error does not attribute the snapshot failure: %v", err)
	}
}

// failingSnapshotApp delegates everything but fails every Snapshot call.
type failingSnapshotApp struct{ App }

func (f *failingSnapshotApp) Snapshot() ([]byte, error) {
	return nil, errSnapshotFault
}

var errSnapshotFault = &snapshotFaultError{}

type snapshotFaultError struct{}

func (*snapshotFaultError) Error() string { return "injected snapshot fault" }
